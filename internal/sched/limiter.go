package sched

import "sync"

// tenantBuckets is the admission control: one token bucket per tenant,
// refilled at rate tokens/sec up to burst. rate <= 0 admits everything.
type tenantBuckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	now   func() float64
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   float64
}

func newTenantBuckets(rate, burst float64, now func() float64) *tenantBuckets {
	return &tenantBuckets{rate: rate, burst: burst, now: now, m: make(map[string]*bucket)}
}

// allow consumes one token from the tenant's bucket if available.
func (t *tenantBuckets) allow(tenant string) bool {
	if t.rate <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.now()
	b, ok := t.m[tenant]
	if !ok {
		b = &bucket{tokens: t.burst, last: n}
		t.m[tenant] = b
	}
	b.tokens += (n - b.last) * t.rate
	if b.tokens > t.burst {
		b.tokens = t.burst
	}
	b.last = n
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// capTable enforces the per-provider and per-DTN concurrency caps with
// counting semaphores under one lock, acquired atomically so a worker
// never holds a provider slot while starving for a DTN slot.
type capTable struct {
	mu          sync.Mutex
	cond        *sync.Cond
	providerCap int // <= 0 means unlimited
	dtnCap      int // <= 0 means unlimited
	prov, dtn   map[string]int
	provPeak    map[string]int
	dtnPeak     map[string]int
	closed      bool
}

func newCapTable(providerCap, dtnCap int) *capTable {
	c := &capTable{
		providerCap: providerCap, dtnCap: dtnCap,
		prov: make(map[string]int), dtn: make(map[string]int),
		provPeak: make(map[string]int), dtnPeak: make(map[string]int),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// acquire blocks until both a provider slot and (for detours, dtn != "")
// a DTN slot are free, then takes both. It returns ErrClosed if the
// table is closed before slots free up.
func (c *capTable) acquire(provider, dtn string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.closed && ((c.providerCap > 0 && c.prov[provider] >= c.providerCap) ||
		(dtn != "" && c.dtnCap > 0 && c.dtn[dtn] >= c.dtnCap)) {
		c.cond.Wait()
	}
	if c.closed {
		return ErrClosed
	}
	c.prov[provider]++
	if c.prov[provider] > c.provPeak[provider] {
		c.provPeak[provider] = c.prov[provider]
	}
	if dtn != "" {
		c.dtn[dtn]++
		if c.dtn[dtn] > c.dtnPeak[dtn] {
			c.dtnPeak[dtn] = c.dtn[dtn]
		}
	}
	return nil
}

// tryAcquireLanes atomically takes a capacity slot for each lane whose
// slots are free right now, never blocking. vias[i] is lane i's DTN
// ("" for a direct lane). It returns the indices of the lanes acquired;
// the caller releases each with release(provider, vias[i]).
//
// This is the multipath admission path. A per-lane blocking acquire
// loop would hold-and-wait: two striped jobs to the same provider can
// each take partial slots and block forever on the rest, and a single
// job deadlocks outright when ProviderCap is below its lane count.
// Taking everything currently free under one critical section — and
// letting the caller degrade when too few lanes fit — keeps the
// capTable's no-hold-while-starving invariant.
func (c *capTable) tryAcquireLanes(provider string, vias []string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	taken := make([]int, 0, len(vias))
	for i, via := range vias {
		if c.providerCap > 0 && c.prov[provider] >= c.providerCap {
			break // every remaining lane needs a provider slot too
		}
		if via != "" && c.dtnCap > 0 && c.dtn[via] >= c.dtnCap {
			continue // this DTN is full; a later lane may still fit
		}
		c.prov[provider]++
		if c.prov[provider] > c.provPeak[provider] {
			c.provPeak[provider] = c.prov[provider]
		}
		if via != "" {
			c.dtn[via]++
			if c.dtn[via] > c.dtnPeak[via] {
				c.dtnPeak[via] = c.dtn[via]
			}
		}
		taken = append(taken, i)
	}
	return taken
}

// release frees the slots taken by the matching acquire.
func (c *capTable) release(provider, dtn string) {
	c.mu.Lock()
	c.prov[provider]--
	if dtn != "" {
		c.dtn[dtn]--
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// close wakes every blocked acquire; they observe ErrClosed.
func (c *capTable) close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// snapshot copies the in-use and high-water maps.
func (c *capTable) snapshot() (provInUse, provPeak, dtnInUse, dtnPeak map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := func(m map[string]int) map[string]int {
		out := make(map[string]int, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	return cp(c.prov), cp(c.provPeak), cp(c.dtn), cp(c.dtnPeak)
}
