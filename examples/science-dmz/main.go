// Science DMZ: the paper's discussion section points at Science DMZ
// (Dart et al., SC'13) as the sibling idea to routing detours — DTNs
// that bypass the campus firewall rather than a WAN bottleneck. This
// example builds a campus where the border firewall inspects every
// connection at 1 MB/s, places a DTN in a firewall-free DMZ, and shows
// the same store-and-forward relay machinery recovering the wire speed.
package main

import (
	"fmt"

	"detournet/internal/cloudsim"
	"detournet/internal/core"
	"detournet/internal/fluid"
	"detournet/internal/sdk"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"

	rsyncx "detournet/internal/rsyncx"
)

func main() {
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"workstation", "firewall", "border", "dtn", "provider-dc"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	lan := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.0005}
	wan := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.015}
	// The stateful firewall caps each flow at 1 MB/s even though its
	// wire is 10 MB/s.
	fw := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.001, PerFlowCapBps: 1e6}
	g.MustConnect("workstation", "firewall", lan)
	g.MustConnect("firewall", "border", fw)
	g.MustConnect("workstation", "dtn", lan) // internal path, no firewall
	g.MustConnect("dtn", "border", lan)      // the DMZ faces the WAN directly
	g.MustConnect("border", "provider-dc", wan)
	// Ordinary traffic is policy-routed through the firewall.
	g.MustSetOverride("workstation", "firewall", "border", "provider-dc")

	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	svc := cloudsim.NewService(eng, tn, "GoogleDrive", "provider-dc", cloudsim.GoogleDrive)
	svc.Start(tn)

	daemon := rsyncx.NewDaemon(tn, "dtn")
	daemon.Start()
	agent := core.NewAgent(tn, "dtn", daemon)
	agent.RegisterProvider(sdk.NewGoogleDrive(eng, tn, "dtn", "provider-dc",
		sdk.Register(svc, "dtn-agent", "s"), sdk.Options{}))
	agent.Start()

	done := false
	r.Go("demo", func(p *simproc.Proc) {
		defer func() { done = true }()
		client := sdk.NewGoogleDrive(eng, tn, "workstation", "provider-dc",
			sdk.Register(svc, "workstation", "s"), sdk.Options{})
		defer client.Close()

		const size = 50e6
		direct, err := core.DirectUpload(p, client, "through-firewall.bin", size, "")
		if err != nil {
			panic(err)
		}
		dc := core.NewDetourClient(tn, "workstation", "dtn")
		dmz, err := dc.Upload(p, "GoogleDrive", "via-dmz.bin", size, "")
		if err != nil {
			panic(err)
		}

		fmt.Println("Uploading 50 MB from a firewalled workstation:")
		fmt.Printf("  through the firewall (1 MB/s per-flow cap): %6.1f s\n", direct.Total)
		fmt.Printf("  via the Science-DMZ DTN:                    %6.1f s"+
			"  (LAN %0.1f s + WAN %0.1f s)\n", dmz.Total, dmz.Hop1, dmz.Hop2)
		fmt.Printf("\nThe DTN restores %.1fx of the firewall-throttled throughput —\n",
			direct.Total/dmz.Total)
		fmt.Println("the same relay machinery as the WAN detours, pointed at a local bottleneck.")
	})
	r.Drive()
	if !done {
		panic("demo did not finish")
	}
}
