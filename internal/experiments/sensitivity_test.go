package experiments

import (
	"strings"
	"testing"

	"detournet/internal/scenario"
)

func TestSensitivitySweepFindsCrossover(t *testing.T) {
	points := SensitivityPacificWave(Quick(), []float64{1.25, 3, 8})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// At the paper's 1.25 MB/s the detour wins.
	if !points[0].DetourWins() {
		t.Errorf("at 1.25 MB/s detour should win: %+v", points[0])
	}
	// With the hand-off at 8 MB/s (matching the research paths) the
	// artifact is gone and direct wins.
	if points[2].DetourWins() {
		t.Errorf("at 8 MB/s direct should win: %+v", points[2])
	}
	// Direct time is monotone non-increasing in hand-off capacity.
	for i := 1; i < len(points); i++ {
		if points[i].DirectSeconds > points[i-1].DirectSeconds*1.05 {
			t.Errorf("direct time not improving with capacity: %+v -> %+v",
				points[i-1], points[i])
		}
	}
	// Detour time is roughly unaffected (it avoids the swept link).
	for _, pt := range points {
		if pt.DetourSeconds < 28 || pt.DetourSeconds > 55 {
			t.Errorf("detour time drifted: %+v", pt)
		}
	}
	out := FormatSensitivity(points)
	if !strings.Contains(out, "winner") || !strings.Contains(out, "detour") || !strings.Contains(out, "direct") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestContentionStudyScalesGracefully(t *testing.T) {
	sets := [][]string{
		{scenario.UBC},
		{scenario.UBC, scenario.Purdue},
		{scenario.UBC, scenario.Purdue, scenario.UCLA},
	}
	results, err := ContentionStudy(Quick(), sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	solo := results[0].Seconds[0]
	if solo <= 0 {
		t.Fatalf("solo = %v", solo)
	}
	// UBC's transfer with three concurrent relays must not be slower
	// than 3x its solo time (the DTN legs don't fully overlap: the other
	// clients' hop1 bottlenecks are their own access links).
	three := results[2].Seconds[0]
	if three > 3*solo {
		t.Errorf("UBC under 3-way contention %.1fs vs solo %.1fs: worse than 3x", three, solo)
	}
	// Every client completed.
	for _, r := range results {
		for i, s := range r.Seconds {
			if s <= 0 {
				t.Errorf("client %s never finished: %+v", r.Clients[i], r)
			}
		}
	}
	out := FormatContention(results)
	if !strings.Contains(out, "3 client(s)") {
		t.Fatalf("format:\n%s", out)
	}
}
