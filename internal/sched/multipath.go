// Multipath job mode: stripe one upload across several concurrent
// routes. The scheduler owns admission — it acquires one capacity slot
// per lane (the provider slot plus, for detours, the DTN slot, exactly
// as K single-path jobs would) and sheds the extra lanes under brownout
// (a multipath job degrades to a plain single-path transfer rather than
// amplifying an overloaded fleet). The striping itself — the chunk
// ledger, work stealing, hedged tail re-dispatch, per-path checkpoints
// — lives in internal/multipath behind the MultipathExecutor seam.
package sched

import (
	"detournet/internal/core"
	"detournet/internal/multipath"
)

// JobMode selects a job's transfer strategy.
type JobMode int

const (
	// JobSingle runs the job over one chosen route (the default).
	JobSingle JobMode = iota
	// JobMultipath stripes the job across direct + detour routes
	// concurrently when the Executor implements MultipathExecutor.
	JobMultipath
)

// MultipathExecutor is an Executor that can stripe one job across
// several routes at once. Routes are the lanes to drive concurrently
// (the scheduler has already taken a capacity slot for each); the
// returned report carries per-path chunk assignment and accounting.
type MultipathExecutor interface {
	Executor
	ExecuteMultipath(job Job, routes []core.Route, chunk float64) (multipath.Report, error)
}

// runMultipath runs one striped attempt. done=false means the caller
// should fall back to the single-path flow: brownout is shedding
// optional work, the executor can't stripe, no second lane exists, or
// the striped attempt itself failed (the job's data is intact — parts
// are separate objects — so a plain retry is safe).
func (s *Scheduler) runMultipath(j Job, key CacheKey, route core.Route, hit bool) (Result, bool) {
	mx, ok := s.cfg.Executor.(MultipathExecutor)
	if !ok || s.brownoutActive() {
		return Result{}, false
	}
	routes := s.multipathRoutes(key, j, route)
	if len(routes) < 2 {
		return Result{}, false
	}
	// One capacity slot per lane, acquired in route order. Lanes are
	// admitted exactly like K independent jobs, so provider and DTN caps
	// bound striped load the same way they bound fleet load.
	acquired := make([]core.Route, 0, len(routes))
	for _, r := range routes {
		if err := s.caps.acquire(j.Provider, r.Via); err != nil {
			for _, a := range acquired {
				s.caps.release(j.Provider, a.Via)
			}
			return Result{Job: j, Route: route, CacheHit: hit, Err: err}, true
		}
		acquired = append(acquired, r)
	}
	rep, err := mx.ExecuteMultipath(j, routes, s.cfg.MultipathChunk)
	for _, a := range acquired {
		s.caps.release(j.Provider, a.Via)
	}
	if err != nil {
		s.breakers.failure(breakerKey(j.Provider, route))
		return Result{}, false
	}
	var resumed, rewritten float64
	for _, pr := range rep.Paths {
		resumed += pr.Resumed
		rewritten += pr.Rewritten
	}
	s.mu.Lock()
	s.mpJobs++
	s.mpHedged += int64(rep.HedgedChunks)
	s.mpResent += int64(rep.ResentChunks)
	s.mpDuplicateBytes += rep.DuplicateBytes
	s.bytesResumed += resumed
	s.bytesRewritten += rewritten
	s.mu.Unlock()
	s.breakers.success(providerKey(j.Provider))
	if !s.brownoutActive() {
		s.cache.Observe(key, route, j.Size, rep.Seconds)
	}
	return Result{
		Job: j, Route: route, Seconds: rep.Seconds, Attempts: 1,
		CacheHit: hit, Resumed: resumed, Rewritten: rewritten,
		Multipath: &rep,
	}, true
}

// multipathRoutes assembles the job's lane set: direct first (it is
// always a lane — the paper's capped-last-mile sites lose nothing, and
// everyone else gains its capacity), then the planned route and the
// cache's detour candidates, deduplicated, capped at the job's or the
// config's path limit.
func (s *Scheduler) multipathRoutes(key CacheKey, j Job, primary core.Route) []core.Route {
	maxPaths := j.MaxPaths
	if maxPaths <= 0 {
		maxPaths = s.cfg.MultipathMaxPaths
	}
	routes := []core.Route{core.DirectRoute}
	add := func(r core.Route) {
		if r.Kind != core.Detour || len(routes) >= maxPaths {
			return
		}
		for _, have := range routes {
			if have == r {
				return
			}
		}
		routes = append(routes, r)
	}
	add(primary)
	for _, c := range s.cache.Candidates(key) {
		add(c)
	}
	return routes
}
