package xtraffic

import (
	"math/rand"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
)

func setup() (*simclock.Engine, *fluid.Network, *fluid.Link) {
	eng := simclock.NewEngine()
	fl := fluid.New(eng)
	l := fl.AddLink("l", 100, 0.001)
	return eng, fl, l
}

func TestLoadStaysInBounds(t *testing.T) {
	eng, fl, l := setup()
	p := Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 1}, rand.New(rand.NewSource(1)))
	for i := 0; i < 200; i++ {
		eng.Advance(5)
		if p.Load() < 0 || p.Load() > 0.95 {
			t.Fatalf("load out of bounds: %v", p.Load())
		}
		if l.Load() != p.Load() {
			t.Fatalf("link load %v != process load %v", l.Load(), p.Load())
		}
	}
	p.Stop()
}

func TestMeanLoadApproximatelyHeld(t *testing.T) {
	eng, fl, l := setup()
	p := Attach(fl, l, Config{MeanLoad: 0.4, Burstiness: 0.5, Interval: 1}, rand.New(rand.NewSource(7)))
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		eng.Advance(1)
		sum += p.Load()
	}
	avg := sum / float64(n)
	if avg < 0.3 || avg > 0.5 {
		t.Fatalf("long-run average load = %v, want ~0.4", avg)
	}
	p.Stop()
}

func TestZeroBurstinessIsConstant(t *testing.T) {
	eng, fl, l := setup()
	p := Attach(fl, l, Config{MeanLoad: 0.3, Burstiness: 0}, rand.New(rand.NewSource(2)))
	for i := 0; i < 50; i++ {
		eng.Advance(5)
		if p.Load() != 0.3 {
			t.Fatalf("burstiness 0 load = %v, want exactly 0.3", p.Load())
		}
	}
	p.Stop()
	if l.Load() != 0 {
		t.Fatal("Stop did not clear link load")
	}
}

func TestStopHaltsResampling(t *testing.T) {
	eng, fl, l := setup()
	p := Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 1}, rand.New(rand.NewSource(3)))
	p.Stop()
	p.Stop() // idempotent
	if eng.Pending() != 0 {
		t.Fatalf("events still pending after Stop: %d", eng.Pending())
	}
	_ = l
}

func TestDeterministicForSameSeed(t *testing.T) {
	trace := func(seed int64) []float64 {
		eng, fl, l := setup()
		p := Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 0.8}, rand.New(rand.NewSource(seed)))
		var out []float64
		for i := 0; i < 30; i++ {
			eng.Advance(5)
			out = append(out, p.Load())
		}
		p.Stop()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAutocorrelationPersists(t *testing.T) {
	// With high alpha, consecutive samples should be closer than samples
	// far apart, on average.
	eng, fl, l := setup()
	p := Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 1, Interval: 1, Alpha: 0.9}, rand.New(rand.NewSource(11)))
	var xs []float64
	for i := 0; i < 1000; i++ {
		eng.Advance(1)
		xs = append(xs, p.Load())
	}
	p.Stop()
	var d1, d10 float64
	for i := 0; i+10 < len(xs); i++ {
		d1 += abs(xs[i+1] - xs[i])
		d10 += abs(xs[i+10] - xs[i])
	}
	if d1 >= d10 {
		t.Fatalf("no autocorrelation: adjacent diffs %v >= lag-10 diffs %v", d1, d10)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestControllerStopAll(t *testing.T) {
	eng, fl, _ := setup()
	c := NewController()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		l := fl.AddLink("x", 100, 0)
		c.Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 0.5}, rng)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	eng.Advance(20)
	c.StopAll()
	if eng.Pending() != 0 {
		t.Fatalf("pending events after StopAll: %d", eng.Pending())
	}
}

func TestCrossTrafficSlowsForegroundFlow(t *testing.T) {
	eng, fl, l := setup()
	Attach(fl, l, Config{MeanLoad: 0.5, Burstiness: 0}, rand.New(rand.NewSource(9)))
	f := fl.StartFlow([]*fluid.Link{l}, 1000, fluid.FlowOpts{})
	// Link capacity 100, half loaded -> rate 50 -> 20s.
	eng.RunUntil(25)
	if f.State() != fluid.FlowDone {
		t.Fatal("flow not done by t=25")
	}
	got := float64(f.FinishedAt())
	if got < 19.9 || got > 20.1 {
		t.Fatalf("finish at %v, want 20", got)
	}
}

func TestConfigClamping(t *testing.T) {
	c := Config{MeanLoad: 2, Burstiness: -1, Alpha: 1.5}.withDefaults()
	if c.MeanLoad != 0.95 || c.Burstiness != 0 || c.Alpha >= 1 {
		t.Fatalf("clamping wrong: %+v", c)
	}
	if c.Interval != 5 {
		t.Fatalf("default interval = %v", c.Interval)
	}
}
