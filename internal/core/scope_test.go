package core

import (
	"strings"
	"testing"

	"detournet/internal/simproc"
)

// TestRelayAdoptsCallerFlowScope pins the cross-hop scope propagation a
// multipath hedge abort depends on: when a scoped process runs a
// resumable detour upload, the DTN agent relays the second hop under
// the caller's scope, so BOTH hops' flows carry "scope|" labels and a
// scoped kill prefix can reach the dtn->provider leg too.
func TestRelayAdoptsCallerFlowScope(t *testing.T) {
	tb := newTestbed(t)
	fl := tb.g.Fluid()
	dc := NewDetourClient(tb.tn, "user", "dtn")
	var hop1, hop2 []string
	grabInto := func(dst *[]string, prefix string) {
		for _, l := range fl.SortedFlowLabels() {
			if strings.HasPrefix(l, prefix) {
				*dst = append(*dst, l)
			}
		}
	}
	// Hop 1 (user->dtn) runs roughly first, hop 2 (dtn->provider-dc)
	// after staging completes; each hop is ~2.6s at 8 MB/s.
	tb.eng.After(1.5, func() { grabInto(&hop1, "mp:f|user->dtn:") })
	tb.eng.After(4.5, func() { grabInto(&hop2, "mp:f|dtn->provider-dc:") })
	tb.run(t, func(p *simproc.Proc) {
		p.SetScope("mp:f")
		var ck Checkpoint
		if _, err := dc.UploadResumable(p, "GoogleDrive", "f.bin", 20e6, "d", &ck); err != nil {
			t.Error(err)
		}
	})
	if len(hop1) == 0 {
		t.Error("no scoped user->dtn flow observed on hop 1")
	}
	if len(hop2) == 0 {
		t.Error("no scoped dtn->provider-dc flow observed on hop 2 (agent did not adopt the caller's scope)")
	}
}
