package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"detournet/internal/core"
	"detournet/internal/detourselect"
	"detournet/internal/scenario"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/workload"
)

// The workload study extends the paper's per-size grids to a realistic
// job mix: it replays a personal-cloud-storage upload workload through
// three policies — always direct, always the best static detour, and
// size-aware adaptive selection — and reports per-policy makespan and
// mean transfer time. This quantifies the paper's claim that routing
// inefficiencies "have a real impact on many users" beyond the
// single-file benchmarks.

// WorkloadPolicy names a routing policy for the study.
type WorkloadPolicy string

const (
	// PolicyDirect uploads every job directly.
	PolicyDirect WorkloadPolicy = "direct"
	// PolicyDetour uploads every job via one fixed DTN.
	PolicyDetour WorkloadPolicy = "detour"
	// PolicyAdaptive picks per job-size using probe-based predictions.
	PolicyAdaptive WorkloadPolicy = "adaptive"
)

// WorkloadResult is one policy's outcome.
type WorkloadResult struct {
	Policy WorkloadPolicy
	// Via is the DTN used by PolicyDetour.
	Via string
	// Makespan is the virtual time from first arrival to last completion.
	Makespan float64
	// MeanTransfer is the mean per-job transfer time.
	MeanTransfer float64
	// Transfers holds per-job transfer seconds, in job order.
	Transfers []float64
	// DetourJobs counts jobs routed via a DTN.
	DetourJobs int
}

// WorkloadStudy replays n jobs of the personal-cloud mix from client to
// provider under each policy. Each policy runs in its own
// identically-seeded world, so the comparison is paired.
func WorkloadStudy(o Options, client, provider string, n int) ([]WorkloadResult, error) {
	jobs := workload.Generate(n, workload.PersonalCloud(),
		workload.Poisson{RatePerSec: 0.02}, rand.New(rand.NewSource(o.Seed)))

	var results []WorkloadResult
	for _, policy := range []WorkloadPolicy{PolicyDirect, PolicyDetour, PolicyAdaptive} {
		res, err := runWorkloadPolicy(o, client, provider, jobs, policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: workload policy %s: %w", policy, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func runWorkloadPolicy(o Options, client, provider string, jobs []workload.Job, policy WorkloadPolicy) (WorkloadResult, error) {
	w := scenario.Build(pairSeed(o, client, provider))
	res := WorkloadResult{Policy: policy}
	var runErr error
	w.RunWorkload("workload-"+string(policy), func(p *simproc.Proc) {
		direct := w.NewSDKClient(client, provider)
		defer direct.Close()
		detours := map[string]*core.DetourClient{}
		for _, dtn := range scenario.DTNs {
			detours[dtn] = w.NewDetourClient(client, dtn)
		}

		// Policy setup.
		routeFor := func(size float64) core.Route { return core.DirectRoute }
		switch policy {
		case PolicyDetour:
			// Use the paper's method: one probing pass picks the static DTN.
			sel := detourselect.NewSelector()
			route, _, err := sel.Choose(p, direct, detours, provider, 60e6)
			if err != nil {
				runErr = err
				return
			}
			if route.Kind == core.Direct {
				// No detour wins here; the static-detour policy still
				// needs one — take the best detour prediction.
				route = core.ViaRoute(scenario.DTNs[0])
			}
			res.Via = route.Via
			routeFor = func(float64) core.Route { return route }
		case PolicyAdaptive:
			// Probe once at two sizes and fit a linear model per route,
			// then pick per job size.
			sel := detourselect.NewSelector()
			_, small, err := sel.Choose(p, direct, detours, provider, 1e6)
			if err != nil {
				runErr = err
				return
			}
			_, big, err := sel.Choose(p, direct, detours, provider, 64e6)
			if err != nil {
				runErr = err
				return
			}
			type model struct{ a, b float64 } // seconds = a + b*size
			models := map[core.Route]model{}
			for _, ps := range small {
				for _, pb := range big {
					if ps.Route == pb.Route {
						b := (pb.Seconds - ps.Seconds) / (64e6 - 1e6)
						models[ps.Route] = model{a: ps.Seconds - b*1e6, b: b}
					}
				}
			}
			routeFor = func(size float64) core.Route {
				best := core.DirectRoute
				bestT := 0.0
				first := true
				for r, m := range models {
					t := m.a + m.b*size
					if first || t < bestT {
						best, bestT = r, t
						first = false
					}
				}
				return best
			}
		}

		start := p.Now()
		for i, job := range jobs {
			// Honor arrival times: wait until the job arrives (jobs queue
			// behind slow transfers otherwise).
			arrival := start + simclock.Time(job.At)
			if p.Now() < arrival {
				p.Sleep(float64(arrival - p.Now()))
			}
			route := routeFor(job.Size)
			if route.Kind == core.Detour {
				res.DetourJobs++
			}
			rep, err := core.Upload(p, route, direct, detours, provider,
				fmt.Sprintf("%s-%d-%s", policy, i, job.Name), job.Size, "")
			if err != nil {
				runErr = err
				return
			}
			res.Transfers = append(res.Transfers, rep.Total)
		}
		res.Makespan = float64(p.Now() - start)
	})
	if runErr != nil {
		return WorkloadResult{}, runErr
	}
	var sum float64
	for _, t := range res.Transfers {
		sum += t
	}
	if len(res.Transfers) > 0 {
		res.MeanTransfer = sum / float64(len(res.Transfers))
	}
	return res, nil
}

// FormatWorkloadStudy renders the study as a table.
func FormatWorkloadStudy(client, provider string, results []WorkloadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload study: %s -> %s (%d jobs, personal-cloud mix)\n",
		client, provider, len(results[0].Transfers))
	fmt.Fprintf(&b, "%-10s %-12s %12s %14s %12s\n", "policy", "via", "makespan(s)", "mean xfer(s)", "detour jobs")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %-12s %12.1f %14.2f %12d\n",
			r.Policy, r.Via, r.Makespan, r.MeanTransfer, r.DetourJobs)
	}
	return b.String()
}
