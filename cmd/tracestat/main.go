// Command tracestat analyzes a JSONL trace produced by the tracelog
// layer (e.g. `detourctl -trace trace.jsonl`): per-event-kind counts,
// and per-route transfer statistics (count, bytes, mean throughput).
//
// Usage:
//
//	tracestat [-f trace.jsonl]     # default: stdin
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"detournet/internal/tracelog"
)

func main() {
	var path = flag.String("f", "-", "trace file (JSON lines), - for stdin")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := readEvents(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Println("no events")
		return
	}
	printKindCounts(os.Stdout, events)
	printTransferStats(os.Stdout, events)
}

func readEvents(in io.Reader) ([]tracelog.Event, error) {
	var out []tracelog.Event
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e tracelog.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func printKindCounts(w io.Writer, events []tracelog.Event) {
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "%-28s %8s\n", "EVENT", "COUNT")
	for _, k := range kinds {
		fmt.Fprintf(w, "%-28s %8d\n", k, counts[k])
	}
}

// transferKey groups transfer events by (via, provider).
type transferKey struct{ via, provider string }

type transferAgg struct {
	n       int
	bytes   float64
	seconds float64
}

func printTransferStats(w io.Writer, events []tracelog.Event) {
	aggs := map[transferKey]*transferAgg{}
	for _, e := range events {
		if e.Kind != "detour.upload.done" && e.Kind != "detour.download.done" &&
			e.Kind != "detour.pipeline.done" {
			continue
		}
		k := transferKey{via: str(e.Attrs["via"]), provider: str(e.Attrs["provider"])}
		a := aggs[k]
		if a == nil {
			a = &transferAgg{}
			aggs[k] = a
		}
		a.n++
		a.bytes += num(e.Attrs["bytes"])
		a.seconds += num(e.Attrs["total"])
	}
	if len(aggs) == 0 {
		return
	}
	keys := make([]transferKey, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].via != keys[j].via {
			return keys[i].via < keys[j].via
		}
		return keys[i].provider < keys[j].provider
	})
	fmt.Fprintf(w, "\n%-14s %-14s %8s %12s %14s\n", "VIA", "PROVIDER", "COUNT", "TOTAL MB", "MEAN MB/s")
	for _, k := range keys {
		a := aggs[k]
		mbps := 0.0
		if a.seconds > 0 {
			mbps = a.bytes / a.seconds / 1e6
		}
		fmt.Fprintf(w, "%-14s %-14s %8d %12.1f %14.2f\n",
			k.via, k.provider, a.n, a.bytes/1e6, mbps)
	}
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}
