// Package detournet's root benchmark harness regenerates every table and
// figure of the paper (printed once per benchmark, so
// `go test -bench=. -benchmem` output doubles as the reproduction
// record) and runs the ablation studies listed in DESIGN.md §5.
//
// Benchmarks use the full measurement protocol (7 runs, mean of last 5,
// the paper's seven file sizes) at the committed seed; ns/op measures
// the cost of reproducing the experiment in the simulator, and custom
// metrics carry the headline scientific quantities (speedups, accuracy).
package detournet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detournet/internal/cloudsim"
	"detournet/internal/core"
	"detournet/internal/detourselect"
	"detournet/internal/experiments"
	"detournet/internal/fileutil"
	"detournet/internal/fluid"
	"detournet/internal/measure"
	"detournet/internal/overlay"
	"detournet/internal/rsyncx"
	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/sdk"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
	"detournet/internal/workload"
)

var printed sync.Map

// printOnce emits an experiment's rendered output a single time per
// benchmark, independent of b.N.
func printOnce(key, text string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// benchPair reproduces one figure backed by a client→provider grid.
func benchPair(b *testing.B, key, client, provider string, render func(*experiments.Suite) string) {
	b.Helper()
	var lastDirect, lastBest float64
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Options: experiments.Default()}
		out := render(s)
		printOnce(key, out)
		g := s.Pair(client, provider).Grid
		lastDirect = g.Cell(100, core.DirectRoute).Summary.Mean
		best := g.Fastest(100)
		lastBest = g.Cell(100, best).Summary.Mean
	}
	b.ReportMetric(lastDirect/lastBest, "speedup@100MB")
}

func BenchmarkFig2UBCGoogleDrive(b *testing.B) {
	benchPair(b, "fig2", scenario.UBC, scenario.GoogleDrive, (*experiments.Suite).Fig2)
}

func BenchmarkFig4UBCDropbox(b *testing.B) {
	benchPair(b, "fig4", scenario.UBC, scenario.Dropbox, (*experiments.Suite).Fig4)
}

func BenchmarkFig7PurdueGoogleDrive(b *testing.B) {
	benchPair(b, "fig7", scenario.Purdue, scenario.GoogleDrive, (*experiments.Suite).Fig7)
}

func BenchmarkFig8PurdueDropbox(b *testing.B) {
	benchPair(b, "fig8", scenario.Purdue, scenario.Dropbox, (*experiments.Suite).Fig8)
}

func BenchmarkFig9PurdueOneDrive(b *testing.B) {
	benchPair(b, "fig9", scenario.Purdue, scenario.OneDrive, (*experiments.Suite).Fig9)
}

func BenchmarkFig10UCLAGoogleDrive(b *testing.B) {
	benchPair(b, "fig10", scenario.UCLA, scenario.GoogleDrive, (*experiments.Suite).Fig10)
}

func BenchmarkFig11UCLADropbox(b *testing.B) {
	benchPair(b, "fig11", scenario.UCLA, scenario.Dropbox, (*experiments.Suite).Fig11)
}

func BenchmarkTableIIUBCGoogleDrive(b *testing.B) {
	benchPair(b, "table2", scenario.UBC, scenario.GoogleDrive, (*experiments.Suite).TableII)
}

func BenchmarkTableIIIPurdueGoogleDrive(b *testing.B) {
	benchPair(b, "table3", scenario.Purdue, scenario.GoogleDrive, (*experiments.Suite).TableIII)
}

func BenchmarkTableIRouteSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Run(experiments.Default())
		printOnce("table1", s.TableI())
	}
}

func BenchmarkTableIVPurdueVariance(b *testing.B) {
	var stddev float64
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Options: experiments.Default()}
		printOnce("table4", s.TableIV())
		c := s.Pair(scenario.Purdue, scenario.OneDrive).Grid.Cell(100, core.DirectRoute)
		stddev = c.Summary.StdDev
	}
	b.ReportMetric(stddev, "direct-stddev@100MB")
}

func BenchmarkTableVGeoSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Options: experiments.Default()}
		printOnce("table5", s.TableV()+"\n"+s.Fig3())
	}
}

func BenchmarkFig5TracerouteUBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Options: experiments.Default()}
		printOnce("fig5", s.Fig5())
	}
}

func BenchmarkFig6TracerouteUAlberta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Options: experiments.Default()}
		printOnce("fig6", s.Fig6())
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPipelinedRelay compares the paper's store-and-forward
// detour with the pipelined relay it leaves as future work, on the UBC →
// Google Drive 100 MB case.
func BenchmarkAblationPipelinedRelay(b *testing.B) {
	var saf, pipe float64
	for i := 0; i < b.N; i++ {
		w := scenario.Build(2015)
		w.RunWorkload("ablation-pipe", func(p *simproc.Proc) {
			dc := w.NewDetourClient(scenario.UBC, scenario.UAlberta)
			r1, err := dc.Upload(p, scenario.GoogleDrive, "saf.bin", 100*fileutil.MB, "")
			if err != nil {
				b.Error(err)
				return
			}
			r2, err := dc.UploadPipelined(p, scenario.GoogleDrive, "pipe.bin", 100*fileutil.MB, "", 4<<20)
			if err != nil {
				b.Error(err)
				return
			}
			saf, pipe = r1.Total, r2.Total
		})
	}
	printOnce("ablation-pipe", fmt.Sprintf(
		"Ablation: store-and-forward %.1f s vs pipelined %.1f s (UBC->GoogleDrive 100MB, %.2fx)",
		saf, pipe, saf/pipe))
	b.ReportMetric(saf/pipe, "pipeline-speedup")
}

// BenchmarkAblationRsyncVsRaw quantifies what the rsync delta machinery
// buys when a basis exists: a re-sync after a small edit versus a full
// push (the paper deletes the basis, so its detours always pay the full
// cost — this measures what they left on the table for re-uploads).
func BenchmarkAblationRsyncVsRaw(b *testing.B) {
	var full, delta float64
	for i := 0; i < b.N; i++ {
		w := scenario.Build(2015)
		w.RunWorkload("ablation-rsync", func(p *simproc.Proc) {
			data := fileutil.NewWithData("resync.bin", 8<<20, 7).Data
			cl := rsyncx.NewClient(w.Net, scenario.UBC, scenario.UAlberta)
			t0 := p.Now()
			if err := cl.Push(p, "resync.bin", data); err != nil {
				b.Error(err)
				return
			}
			full = float64(p.Now() - t0)
			data[1000] ^= 0xff // one-byte edit
			t0 = p.Now()
			if err := cl.Push(p, "resync.bin", data); err != nil {
				b.Error(err)
				return
			}
			delta = float64(p.Now() - t0)
		})
	}
	printOnce("ablation-rsync", fmt.Sprintf(
		"Ablation: full rsync push %.2f s vs delta re-sync %.2f s (8MB, 1-byte edit, %.0fx)",
		full, delta, full/delta))
	b.ReportMetric(full/delta, "delta-speedup")
}

// BenchmarkAblationChunkSize sweeps the provider upload chunk size on
// the fast, long-RTT UMich → Google Drive path, where each chunk's
// request/response round trips are a visible fraction of the transfer —
// the knob behind the providers' differing per-chunk overheads.
func BenchmarkAblationChunkSize(b *testing.B) {
	chunks := []float64{1 << 20, 4 << 20, 8 << 20, 16 << 20}
	times := make([]float64, len(chunks))
	for i := 0; i < b.N; i++ {
		for ci, chunk := range chunks {
			w := scenario.Build(2015)
			w.RunWorkload("ablation-chunk", func(p *simproc.Proc) {
				client := w.NewSDKClientWithChunk(scenario.UMich, scenario.GoogleDrive, chunk)
				t0 := p.Now()
				if _, err := client.Upload(p, "chunk.bin", 60*fileutil.MB, ""); err != nil {
					b.Error(err)
					return
				}
				times[ci] = float64(p.Now() - t0)
				client.Close()
			})
		}
	}
	out := "Ablation: UMich->GoogleDrive 60MB upload time by chunk size:"
	for ci, chunk := range chunks {
		out += fmt.Sprintf("  %dMiB=%.1fs", int(chunk)>>20, times[ci])
	}
	printOnce("ablation-chunk", out)
	b.ReportMetric(times[0]/times[len(times)-1], "small-vs-large-chunk")
}

// BenchmarkAblationSelector measures the probe-based selector's accuracy
// against the measured-best oracle across all nine client×provider pairs.
func BenchmarkAblationSelector(b *testing.B) {
	var accuracy float64
	for i := 0; i < b.N; i++ {
		agree, total := 0, 0
		for _, client := range scenario.Clients {
			for _, provider := range scenario.ProviderNames {
				w := scenario.Build(2015)
				w.RunWorkload("ablation-selector", func(p *simproc.Proc) {
					direct := w.NewSDKClient(client, provider)
					defer direct.Close()
					detours := map[string]*core.DetourClient{}
					for _, dtn := range scenario.DTNs {
						detours[dtn] = w.NewDetourClient(client, dtn)
					}
					chosen, _, err := detourselect.NewSelector().Choose(p, direct, detours, provider, 60*fileutil.MB)
					if err != nil {
						b.Error(err)
						return
					}
					best := core.DirectRoute
					bestT := 0.0
					for ri, route := range scenario.Routes() {
						f := fileutil.New(fmt.Sprintf("oracle-%d.bin", ri), 60*fileutil.MB, int64(ri))
						rep, err := core.Upload(p, route, direct, detours, provider, f.Name, f.Size, f.MD5)
						if err != nil {
							b.Error(err)
							return
						}
						if ri == 0 || rep.Total < bestT {
							best, bestT = route, rep.Total
						}
					}
					total++
					if chosen == best {
						agree++
					}
				})
			}
		}
		accuracy = float64(agree) / float64(total)
	}
	printOnce("ablation-selector", fmt.Sprintf(
		"Ablation: probe-based selector matches the measured-best route on %.0f%% of the 9 pairs (60MB)",
		accuracy*100))
	b.ReportMetric(accuracy, "selector-accuracy")
}

// BenchmarkAblationKHop compares overlay detours with 0, 1, and 2
// intermediate hops on a topology where only a two-hop relay finds the
// fast path — the generalization beyond the paper's single extra hop.
func BenchmarkAblationKHop(b *testing.B) {
	times := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, k := range []int{0, 1, 2} {
			eng := simclock.NewEngine()
			r := simproc.New(eng)
			g := topology.New(fluid.New(eng))
			hosts := []string{"a", "m1", "m2", "d"}
			for _, h := range hosts {
				g.MustAddNode(&topology.Node{Name: h, Kind: topology.Host, RespondsICMP: true})
			}
			// Only the chain a->m1->m2->d is fast.
			fast := topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.005}
			slow := topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.004}
			g.MustConnect("a", "m1", fast)
			g.MustConnect("m1", "m2", fast)
			g.MustConnect("m2", "d", fast)
			g.MustConnect("a", "d", slow)
			g.MustConnect("a", "m2", slow)
			g.MustConnect("m1", "d", slow)
			tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
			for _, h := range hosts {
				overlay.NewDaemon(tn, h).Start()
			}
			mesh := overlay.NewMesh(tn, "a", hosts)
			mesh.MaxIntermediates = k
			kk := k
			r.Go("khop", func(p *simproc.Proc) {
				if err := mesh.ProbeAll(p); err != nil {
					b.Error(err)
					return
				}
				_, sec, err := mesh.Send(p, "a", "d", 30e6)
				if err != nil {
					b.Error(err)
					return
				}
				times[kk] = sec
			})
			r.RunUntil(simclock.Time(1e6))
		}
	}
	printOnce("ablation-khop", fmt.Sprintf(
		"Ablation: overlay 30MB a->d with k intermediates: k=0 %.1fs, k=1 %.1fs, k=2 %.1fs",
		times[0], times[1], times[2]))
	b.ReportMetric(times[0]/times[2], "k2-speedup")
}

// BenchmarkAblationScienceDMZ reproduces the Science DMZ argument the
// paper cites (Dart et al., SC'13): a stateful campus firewall caps each
// connection at a fraction of the wire speed, and a DTN placed in a
// firewall-free Science DMZ restores throughput — a detour even when
// raw path bandwidths are identical.
func BenchmarkAblationScienceDMZ(b *testing.B) {
	var direct, dmz float64
	for i := 0; i < b.N; i++ {
		eng := simclock.NewEngine()
		r := simproc.New(eng)
		g := topology.New(fluid.New(eng))
		for _, n := range []string{"host", "fw", "border", "dtn", "dc"} {
			g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
		}
		// The firewall inspects every flow at 1 MB/s; wires are 10 MB/s.
		lan := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.0005}
		wan := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.015}
		fwSpec := topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.001, PerFlowCapBps: 1e6}
		g.MustConnect("host", "fw", lan)
		g.MustConnect("fw", "border", fwSpec)
		// The DTN sits in the Science DMZ: reachable from inside without
		// crossing the firewall, and facing the WAN directly.
		g.MustConnect("host", "dtn", lan)
		g.MustConnect("dtn", "border", lan)
		g.MustConnect("border", "dc", wan)
		// Pin routes: ordinary traffic must cross the firewall.
		g.MustSetOverride("host", "fw", "border", "dc")

		tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
		svc := cloudsim.NewService(eng, tn, "GoogleDrive", "dc", cloudsim.GoogleDrive)
		svc.Start(tn)
		daemon := rsyncx.NewDaemon(tn, "dtn")
		daemon.Start()
		agent := core.NewAgent(tn, "dtn", daemon)
		creds := sdk.Register(svc, "dtn-agent", "s")
		agent.RegisterProvider(sdk.NewGoogleDrive(eng, tn, "dtn", "dc", creds, sdk.Options{}))
		agent.Start()

		done := false
		r.Go("dmz", func(p *simproc.Proc) {
			creds := sdk.Register(svc, "host-app", "s")
			client := sdk.NewGoogleDrive(eng, tn, "host", "dc", creds, sdk.Options{})
			rep1, err := core.DirectUpload(p, client, "fw.bin", 50e6, "")
			if err != nil {
				b.Error(err)
				return
			}
			dc := core.NewDetourClient(tn, "host", "dtn")
			rep2, err := dc.Upload(p, "GoogleDrive", "dmz.bin", 50e6, "")
			if err != nil {
				b.Error(err)
				return
			}
			direct, dmz = rep1.Total, rep2.Total
			client.Close()
			done = true
		})
		r.RunUntil(simclock.Time(1e6))
		if !done {
			b.Fatal("workload did not finish")
		}
	}
	printOnce("ablation-dmz", fmt.Sprintf(
		"Ablation: 50MB through campus firewall %.1f s vs via Science-DMZ DTN %.1f s (%.1fx)",
		direct, dmz, direct/dmz))
	b.ReportMetric(direct/dmz, "dmz-speedup")
}

// BenchmarkExtensionWorkloadStudy replays the personal-cloud workload
// through the three routing policies on the paper's strongest detour
// case (Purdue → Google Drive) and reports the adaptive policy's
// speedup over always-direct.
func BenchmarkExtensionWorkloadStudy(b *testing.B) {
	var direct, adaptive float64
	var out string
	for i := 0; i < b.N; i++ {
		results, err := experiments.WorkloadStudy(experiments.Quick(), scenario.Purdue, scenario.GoogleDrive, 12)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Policy {
			case experiments.PolicyDirect:
				direct = r.MeanTransfer
			case experiments.PolicyAdaptive:
				adaptive = r.MeanTransfer
			}
		}
		out = experiments.FormatWorkloadStudy(scenario.Purdue, scenario.GoogleDrive, results)
	}
	printOnce("ext-workload", out)
	b.ReportMetric(direct/adaptive, "adaptive-speedup")
}

// BenchmarkExtensionDownloadGrid measures the reverse direction on the
// UBC ↔ Google Drive pair — the operation the paper's SDKs expose but
// its evaluation leaves unmeasured. Downloads ride the reverse routes
// (which do not carry the PacificWave pin), so direct wins here.
func BenchmarkExtensionDownloadGrid(b *testing.B) {
	var table string
	for i := 0; i < b.N; i++ {
		w := scenario.Build(2015)
		g := measure.RunGrid(w, measure.GridSpec{
			Client:    scenario.UBC,
			Provider:  scenario.GoogleDrive,
			Direction: measure.Download,
			SizesMB:   []int{10, 40, 100},
			Runs:      3, Keep: 2, Seed: 2015,
		})
		table = "Extension: UBC<-GoogleDrive download times\n" + g.FormatTable()
	}
	printOnce("ext-download", table)
}

// BenchmarkExtensionSensitivity sweeps the PacificWave hand-off capacity
// to locate the crossover where the paper's headline detour stops
// paying — quantifying how "transitory" the artifact is.
func BenchmarkExtensionSensitivity(b *testing.B) {
	var out string
	var crossover float64
	for i := 0; i < b.N; i++ {
		caps := []float64{0.6, 1.25, 2.5, 4, 6, 8}
		points := experiments.SensitivityPacificWave(experiments.Quick(), caps)
		out = experiments.FormatSensitivity(points)
		crossover = 0
		for _, pt := range points {
			if !pt.DetourWins() {
				crossover = pt.PacificWaveMBps
				break
			}
		}
	}
	printOnce("ext-sensitivity", out)
	b.ReportMetric(crossover, "crossover-MBps")
}

// BenchmarkExtensionContention measures concurrent detours sharing the
// UAlberta DTN.
func BenchmarkExtensionContention(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		results, err := experiments.ContentionStudy(experiments.Quick(), [][]string{
			{scenario.UBC},
			{scenario.UBC, scenario.Purdue},
			{scenario.UBC, scenario.Purdue, scenario.UCLA},
		})
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatContention(results)
	}
	printOnce("ext-contention", out)
}

// BenchmarkExtensionProviderPOP measures the paper's "providers may add
// additional POPs or gateways" remedy: a Google edge POP on the
// Vancouver exchange versus the pinned direct path and the UAlberta
// detour, for UBC's 100 MB upload.
func BenchmarkExtensionProviderPOP(b *testing.B) {
	var direct, detour, viaPOP float64
	for i := 0; i < b.N; i++ {
		w := scenario.Build(2015, scenario.WithGoogleVancouverPOP())
		w.StartGooglePOP()
		w.RunWorkload("pop-bench", func(p *simproc.Proc) {
			c := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
			rep, err := core.DirectUpload(p, c, "a.bin", 100*fileutil.MB, "")
			if err != nil {
				b.Error(err)
				return
			}
			direct = rep.Total
			c.Close()
			rep, err = w.NewDetourClient(scenario.UBC, scenario.UAlberta).
				Upload(p, scenario.GoogleDrive, "b.bin", 100*fileutil.MB, "")
			if err != nil {
				b.Error(err)
				return
			}
			detour = rep.Total
			pc := w.NewSDKClientVia(scenario.UBC, scenario.GooglePOPVancouver)
			rep, err = core.DirectUpload(p, pc, "c.bin", 100*fileutil.MB, "")
			if err != nil {
				b.Error(err)
				return
			}
			viaPOP = rep.Total
			pc.Close()
		})
	}
	printOnce("ext-pop", fmt.Sprintf(
		"Extension: UBC->GoogleDrive 100MB — direct %.1f s, UAlberta detour %.1f s, Vancouver POP %.1f s",
		direct, detour, viaPOP))
	b.ReportMetric(direct/viaPOP, "pop-speedup")
}

// --- Scheduler control plane (internal/sched) ---

// schedBenchTrace is a fixed 512-job fleet trace shared by the drain
// benchmarks, generated once so trace synthesis stays off the clock.
var schedBenchTrace = func() []workload.FleetJob {
	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    512,
		Clients: []string{scenario.UBC, scenario.Purdue, scenario.UCLA},
		Providers: []string{
			scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive,
		},
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		panic(err)
	}
	return trace
}()

// benchSchedulerDrain measures control-plane throughput — queue, caps,
// cache, and bookkeeping — with an executor that completes instantly,
// so jobs/s reflects scheduler overhead rather than transfer time.
func benchSchedulerDrain(b *testing.B, workers int) {
	b.Helper()
	exec := sched.ExecutorFunc(func(j sched.Job, r core.Route) (float64, error) {
		return j.Size / 10e6, nil
	})
	plan := sched.PlannerFunc(func(client, provider string, size float64) (core.Route, []core.Route, error) {
		return core.ViaRoute(scenario.UAlberta), scenario.Routes(), nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sched.New(sched.Config{
			Workers: workers, Executor: exec, Planner: plan,
			ProviderCap: -1, DTNCap: -1,
		})
		s.Start()
		for _, fj := range schedBenchTrace {
			if err := s.Submit(sched.Job{
				Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
				Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
			}); err != nil {
				b.Fatal(err)
			}
		}
		s.Drain()
		s.Close()
		if st := s.Stats(); st.Done != int64(len(schedBenchTrace)) {
			b.Fatalf("done=%d, want %d", st.Done, len(schedBenchTrace))
		}
	}
	jobs := float64(b.N) * float64(len(schedBenchTrace))
	b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
}

func BenchmarkSchedulerDrain1Worker(b *testing.B)   { benchSchedulerDrain(b, 1) }
func BenchmarkSchedulerDrain8Workers(b *testing.B)  { benchSchedulerDrain(b, 8) }
func BenchmarkSchedulerDrain64Workers(b *testing.B) { benchSchedulerDrain(b, 64) }

// BenchmarkSchedulerRouteCacheHit measures the steady-state fast path:
// repeated traffic on an already-decided (client, provider, bucket) key.
func BenchmarkSchedulerRouteCacheHit(b *testing.B) {
	clock := 0.0
	c := sched.NewRouteCache(1e9, 1e9, func() float64 { return clock }, rand.New(rand.NewSource(1)))
	k := sched.KeyFor(scenario.UBC, scenario.GoogleDrive, 100*fileutil.MB)
	c.Insert(k, core.ViaRoute(scenario.UAlberta), scenario.Routes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
	b.ReportMetric(c.HitRate(), "hit-rate")
}

// --- Routing dynamics (internal/bgppol) ---

// BenchmarkBGPRoutesToMemoized measures the steady-state cost of a
// RoutesTo query on the paper's Gao–Rexford policy: after the first
// computation the per-destination result is memoized, so the fleet's
// repeated route checks (every reroute candidate scan hits this) pay a
// map lookup, not a BFS.
func BenchmarkBGPRoutesToMemoized(b *testing.B) {
	p := scenario.PaperPolicy()
	if _, err := p.RoutesTo("Google"); err != nil { // warm the memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RoutesTo("Google"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBGPRoutesToCold measures the same query when every iteration
// is preceded by a topology mutation (a peering flap), which invalidates
// the memo — the price a churning control plane pays per event.
func BenchmarkBGPRoutesToCold(b *testing.B) {
	p := scenario.PaperPolicy()
	for i := 0; i < b.N; i++ {
		if err := p.RemovePeer("Google", "CENIC"); err != nil {
			b.Fatal(err)
		}
		if err := p.AddPeer("Google", "CENIC"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.RoutesTo("Google"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnReplay replays the full reconvergence storm (control +
// stack runs, the examples/churn workload) once per iteration and
// reports the stack's survival rate over storm-touched transfers.
func BenchmarkChurnReplay(b *testing.B) {
	var v sched.ChurnVerdict
	for i := 0; i < b.N; i++ {
		control := sched.RunChurn(sched.ChurnOptions{Seed: 2015, Stack: false})
		stack := sched.RunChurn(sched.ChurnOptions{Seed: 2015, Stack: true})
		v = sched.CompareChurn(control, stack)
	}
	printOnce("churn", fmt.Sprintf(
		"Churn: storm touched %d transfers — control failed %.0f%%, stack survived %.0f%%, %.1f MB re-sent (budget %.1f MB)",
		v.Affected, 100*v.ControlFailRate(), 100*v.StackSurvivalRate(),
		v.ResentBytes/1e6, v.ResentBudget/1e6))
	b.ReportMetric(v.StackSurvivalRate(), "churn-survival")
}

// BenchmarkSchedulerRouteCacheMiss measures the miss path a first-seen
// key pays before probing even starts: the failed lookup plus the
// insert that builds the per-key bandit over the candidate routes.
func BenchmarkSchedulerRouteCacheMiss(b *testing.B) {
	clock := 0.0
	c := sched.NewRouteCache(1e9, 1e9, func() float64 { return clock }, rand.New(rand.NewSource(1)))
	routes := scenario.Routes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sched.KeyFor(fmt.Sprintf("client-%d", i), scenario.GoogleDrive, 100*fileutil.MB)
		if _, ok := c.Lookup(k); ok {
			b.Fatal("unexpected hit")
		}
		c.Insert(k, core.ViaRoute(scenario.UAlberta), routes)
	}
}
