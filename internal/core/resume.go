package core

import (
	"errors"
	"fmt"

	"detournet/internal/rsyncx"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// ErrIntegrity reports a completed resumable upload whose provider-side
// digest does not match the source file — the resumed session was stale
// or its staged bytes were corrupted. The checkpoint's session has been
// discarded, so a retry re-uploads through a fresh session instead of
// re-committing the bad bytes.
var ErrIntegrity = errors.New("core: provider digest mismatch on resumed upload")

// ErrStall reports a transfer the stall watchdog aborted: it was making
// no byte progress, or running far below the route's learned baseline,
// for longer than its adaptive budget. The transfer's checkpoint is
// intact — hop-1 bytes sit on the DTN's disk, the provider session
// token is recorded — so the scheduler re-routes and resumes rather
// than restarts. A stall is a property of the *path*, not the job: the
// scheduler treats it as route-down-lite (fail over, don't spend the
// job's retry cap).
var ErrStall = errors.New("core: transfer stalled below adaptive floor")

// ErrQuotaExhausted reports a provider refusing writes because the
// tenant's storage quota is spent (HTTP 507 / insufficient-quota). It
// is a property of the provider account, not of any route: failing
// over to another DTN cannot help, but reclaiming quota (abandoned
// upload-session cleanup) or spilling to an alternate provider can.
// Schedulers park the job with the provider's Retry-After hint when
// neither is possible.
var ErrQuotaExhausted = errors.New("core: provider storage quota exhausted")

// DefaultResumeChunk is the chunk size resumable transfers checkpoint
// at when the caller does not specify one.
const DefaultResumeChunk = 8 << 20

// Detached-relay adaptive chunking bounds: while a provider path is
// gray-slow (below slowRelayBps) each write aims at
// relayChunkTargetSecs of wire time; the size floats between
// minRelayChunk and DefaultResumeChunk (see runRelay).
const (
	minRelayChunk        = 1 << 20
	relayChunkTargetSecs = 5.0
	// slowRelayBps is the adaptation threshold: any healthy DTN-to-
	// provider hop runs well above this, so only a genuinely gray write
	// (a silently throttled peering, a dying disk) shrinks the chunk.
	slowRelayBps = 500e3
)

// Checkpoint carries a transfer's durable progress across attempts —
// and across routes: the hop-1 offset lives on a DTN's disk, the
// provider session lives server-side, so a job that fails over from a
// detour to direct (or to another detour) keeps whatever the provider
// already confirmed.
type Checkpoint struct {
	// Hop1Via names the DTN whose disk holds first-hop progress; the
	// offset itself is queried from the daemon (ground truth).
	Hop1Via string
	// Hop1High is the high-water mark of hop-1 bytes pushed, for
	// rewrite accounting.
	Hop1High float64

	// HasSession marks Session as a live provider upload session.
	HasSession bool
	Session    sdk.SessionToken
	// Hop2High is the high-water mark of provider-session bytes sent.
	Hop2High float64

	// BytesResumed counts bytes skipped thanks to checkpoints (work the
	// transfer did NOT redo); BytesRewritten counts bytes sent more than
	// once (work lost to interruptions).
	BytesResumed   float64
	BytesRewritten float64

	// AttemptID is the idempotency key of the attempt in flight. It is
	// stamped onto the provider client (sdk.AttemptTagger) before any
	// session begins, so a commit replayed after a control-plane crash
	// returns the stored object instead of materializing a duplicate.
	AttemptID string
	// ChunkRepairs counts staged chunks re-sent because manifest
	// verification caught silent corruption — chunk-granularity repair,
	// distinct from a whole-transfer integrity discard (ErrIntegrity).
	ChunkRepairs int

	// OnProgress, when non-nil, receives the advisory live byte
	// watermark of the attempt in flight — the feed a stall watchdog
	// keys on. It is not resume state: watermarks are best-effort (a
	// detour's second hop reports at each relay poll, hop 1 at each
	// acked chunk) and never affect accounting.
	OnProgress func(bytes float64) `json:"-"`

	// aborted is the cooperative stall-abort latch: a watchdog raises it
	// (RequestAbort) and the transfer's chunk and poll loops observe it
	// at safe points, returning ErrStall with the checkpoint intact.
	// Cooperation is the only abort that always works — a gray
	// transfer's slowness often lives in a peer's process (a throttled
	// provider, a dying staging disk), where the client has no in-flight
	// flow to kill, only a wait to give up on.
	aborted bool
}

// RequestAbort raises the cooperative abort latch. The transfer in
// flight returns ErrStall at its next safe point; its checkpoint stays
// valid for resume on another route.
func (ck *Checkpoint) RequestAbort() { ck.aborted = true }

// AbortRequested reports the abort latch.
func (ck *Checkpoint) AbortRequested() bool { return ck.aborted }

// ResetAbort lowers the latch so the next attempt starts clean.
func (ck *Checkpoint) ResetAbort() { ck.aborted = false }

// noteProgress reports an advisory live watermark to the watchdog.
func (ck *Checkpoint) noteProgress(bytes float64) {
	if ck.OnProgress != nil {
		ck.OnProgress(bytes)
	}
}

// observeHop1 charges accounting for a hop-1 attempt starting at offset.
func (ck *Checkpoint) observeHop1(offset float64) {
	if offset < ck.Hop1High {
		ck.BytesRewritten += ck.Hop1High - offset
	}
	ck.BytesResumed += offset
}

// abandonHop1 switches the checkpoint's first hop to via (empty for a
// direct route). Progress sitting on a different DTN's disk cannot be
// used from here, so it is charged as rewritten — the bytes must cross
// the first hop again if the transfer ever returns to a detour.
func (ck *Checkpoint) abandonHop1(via string) {
	if ck.Hop1Via == via {
		return
	}
	ck.BytesRewritten += ck.Hop1High
	ck.Hop1Via, ck.Hop1High = via, 0
}

// observeHop2 charges accounting for a provider-session attempt that
// began at start and reached written.
func (ck *Checkpoint) observeHop2(start, written float64) {
	if start < ck.Hop2High {
		ck.BytesRewritten += ck.Hop2High - start
	}
	ck.BytesResumed += start
	if written > ck.Hop2High {
		ck.Hop2High = written
	}
}

// NextObject readies the checkpoint to carry a different object over
// the same path — the per-path reuse a striped multipath transfer
// needs, where one path uploads many chunk objects back to back. The
// per-object marks (hop-1 high water, provider session, hop-2 high
// water) are cleared so the next object starts clean, while the DTN
// affinity (Hop1Via) and the cumulative resumed/rewritten accounting
// survive: they describe the path, not the object.
func (ck *Checkpoint) NextObject() {
	ck.Hop1High = 0
	ck.HasSession = false
	ck.Session = sdk.SessionToken{}
	ck.Hop2High = 0
	ck.aborted = false
}

// DiscardSession abandons the checkpoint's provider session: whatever
// the provider confirmed through it is worthless (stale digest, corrupt
// staging), so those bytes are charged as rewritten and the next
// attempt begins a fresh session.
func (ck *Checkpoint) DiscardSession() {
	ck.BytesRewritten += ck.Hop2High
	ck.HasSession = false
	ck.Session = sdk.SessionToken{}
	ck.Hop2High = 0
}

// verifyDigest is the end-to-end integrity gate at upload completion:
// the provider's recorded digest must match the source file's
// (rsyncx.Checksum-produced) digest. On mismatch the session is
// discarded so the caller's retry starts clean. Either digest being
// empty skips the check — not every caller threads checksums.
func (ck *Checkpoint) verifyDigest(source, provider string) error {
	if source == "" || provider == "" || source == provider {
		return nil
	}
	ck.DiscardSession()
	return fmt.Errorf("provider has %q, source is %q: %w", provider, source, ErrIntegrity)
}

// relayJob is one detached resumable relay's live state. The relay runs
// as its own DTN-side process — store-and-forward: once the bytes are
// staged, the push to the provider belongs to the DTN, and the client
// merely watches. Clients poll it over the control channel
// (handleRelayPoll); a client that gives up asks the relay to park at
// its next chunk boundary (handleRelayAbort), and a later attempt for
// the same name attaches to a live relay instead of double-pushing the
// staged file.
type relayJob struct {
	done     bool
	ok       bool
	abort    bool // park at the next chunk boundary (client gave up)
	err      string
	hasToken bool
	token    sdk.SessionToken
	start    float64 // session offset when this relay began
	written  float64 // session offset now
	info     sdk.FileInfo
	seconds  float64
}

func (rj *relayJob) result() relayResult {
	return relayResult{
		OK: rj.ok || !rj.done, Done: rj.done, Err: rj.err,
		Info: rj.info, Seconds: rj.seconds,
		HasToken: rj.hasToken, Token: rj.token,
		StartOffset: rj.start, Written: rj.written,
	}
}

// handleRelayResume starts (or attaches to) the checkpoint-aware
// store-and-forward second hop: the relay reattaches to the provider
// session in the request's token when possible and uploads the staged
// file chunk by chunk as a detached process, while the caller polls
// with relayPoll. The immediate ack carries OK=false only for requests
// that cannot start at all.
func (a *Agent) handleRelayResume(p *simproc.Proc, c *transport.Conn, m relayResume) {
	if rj, ok := a.relays[m.Name]; ok && !rj.done {
		// A relay for this name is already in flight (a previous client
		// stalled out and left; this is its retry, or a canary). Attach —
		// one staged file gets one push — and withdraw any pending park
		// request, since someone is watching again.
		rj.abort = false
		_ = c.Send(p, relayResult{OK: true}, ctrlBytes)
		return
	}
	rj := &relayJob{}
	a.relays[m.Name] = rj
	a.tn.Runner().Go("agent-relay:"+a.host+":"+m.Name, func(rp *simproc.Proc) {
		if m.Scope != "" {
			// Relay under the caller's flow scope: the second hop's flows
			// belong to the caller's transfer, and a multipath driver must
			// be able to abort them by scoped label without touching other
			// transfers relaying through this DTN.
			rp.SetScope(m.Scope)
		}
		a.runRelay(rp, m, rj)
	})
	_ = c.Send(p, relayResult{OK: true}, ctrlBytes)
}

// runRelay is the detached relay body; it mutates rj as chunks land so
// polls see live progress.
func (a *Agent) runRelay(p *simproc.Proc, m relayResume, rj *relayJob) {
	fail := func(msg string) {
		rj.err = msg
		rj.done = true
	}
	client, ok := a.clients[m.Provider]
	if !ok {
		fail("unknown provider " + m.Provider)
		return
	}
	st, ok := a.daemon.Staged(m.Name)
	if !ok {
		fail("not staged: " + m.Name)
		return
	}
	// Pin the staged file for the relay's lifetime: an in-flight relay
	// is one of the two live-use cases the eviction policy must never
	// touch (the other is an active push handler).
	a.daemon.Pin(m.Name)
	defer a.daemon.Unpin(m.Name)
	t0 := p.Now()
	if at, ok := client.(sdk.AttemptTagger); ok {
		// Tag, open the session (which captures the key), untag: agent
		// clients are shared by every relay through this DTN, and no
		// yield happens between these steps in the cooperative sim.
		at.SetAttemptID(m.AttemptID)
		defer at.SetAttemptID("")
	}
	var sess sdk.UploadSession
	if m.HasToken && m.Token.Provider == m.Provider {
		if r, ok := client.(sdk.SessionResumer); ok {
			// A failed resume (expired session, provider without resume)
			// falls back to a fresh session below.
			if s, err := r.Resume(p, m.Token); err == nil {
				sess = s
			}
		}
	}
	if sess == nil {
		s, err := client.BeginUpload(p, st.Name, st.Size, st.MD5)
		if err != nil {
			fail(err.Error())
			return
		}
		sess = s
	}
	rj.start = sess.Written()
	sync := func() {
		rj.written = sess.Written()
		if ts, ok := sess.(sdk.TokenSession); ok {
			rj.token, rj.hasToken = ts.Token(), true
		}
	}
	sync()
	// Adaptive chunk sizing, rate-based: aim every write at roughly
	// relayChunkTargetSecs on the wire, clamped to [minRelayChunk,
	// DefaultResumeChunk] and at most doubling per step. On a healthy
	// provider path writes finish in ~1 s and the size pins to the
	// ceiling; when the provider silently throttles this DTN a single
	// slow write collapses the size, and because the learned value is
	// per-provider agent state, every later relay starts small too —
	// abort/park latency stays bounded by one SMALL chunk for as long
	// as the slowness lasts, then the size climbs back.
	chunk, ok := a.relayChunk[m.Provider]
	if !ok || chunk <= 0 {
		chunk = float64(DefaultResumeChunk)
	}
	for sess.Written() < st.Size {
		if rj.abort {
			// The client stalled out and asked us to stop. Parking here —
			// not finishing — matters: whatever gray slowness made the
			// client give up is on OUR provider path, and grinding through
			// it would pin the DTN's relay slot for the whole file. The
			// session token in rj lets any retry resume at this offset.
			fail("relay parked at client request")
			return
		}
		n := min(chunk, st.Size-sess.Written())
		last := sess.Written()+n >= st.Size
		w0 := p.Now()
		fi, err := sess.WriteChunk(p, n, last)
		sync()
		if secs := float64(p.Now() - w0); secs > 0 {
			if n/secs < slowRelayBps {
				// Gray-slow write: retarget the next one at
				// relayChunkTargetSecs so a park request is honored within
				// one SMALL chunk, not one 8 MB grind.
				next := chunk * relayChunkTargetSecs / secs
				next = min(next, chunk*2)
				chunk = max(next, float64(minRelayChunk))
			} else if chunk < float64(DefaultResumeChunk) {
				// Healthy again: climb back, doubling per write.
				chunk = min(chunk*2, float64(DefaultResumeChunk))
			}
			a.relayChunk[m.Provider] = chunk
		}
		if err != nil {
			fail(err.Error())
			return
		}
		rj.info = fi
	}
	a.Relayed++
	rj.seconds = float64(p.Now() - t0)
	a.Trace.Emit("agent.relay.resume", map[string]any{
		"name": st.Name, "provider": m.Provider, "bytes": st.Size,
		"resumed_from": rj.start, "seconds": rj.seconds,
	})
	rj.ok = true
	rj.done = true
}

// handleRelayPoll answers a client watching its detached relay.
func (a *Agent) handleRelayPoll(p *simproc.Proc, c *transport.Conn, m relayPoll) {
	rj, ok := a.relays[m.Name]
	if !ok {
		_ = c.Send(p, relayResult{OK: false, Done: true, Err: "no relay for " + m.Name}, ctrlBytes)
		return
	}
	_ = c.Send(p, rj.result(), ctrlBytes)
}

// handleRelayAbort parks a detached relay at its next chunk boundary.
// Idempotent and tolerant of unknown names (the relay may already have
// finished and been superseded).
func (a *Agent) handleRelayAbort(p *simproc.Proc, c *transport.Conn, m relayAbort) {
	if rj, ok := a.relays[m.Name]; ok && !rj.done {
		rj.abort = true
	}
	_ = c.Send(p, relayResult{OK: true, Done: true}, ctrlBytes)
}

// DirectUploadResumable is DirectUpload with checkpointed resume: it
// uploads through a provider session, reattaches to the checkpoint's
// session when one is live, and records the session token in the
// checkpoint after every chunk so an interruption loses at most one
// chunk. Clients without session support fall back to DirectUpload.
func DirectUploadResumable(p *simproc.Proc, client sdk.Client, name string, size float64, md5 string, ck *Checkpoint) (Report, error) {
	sc, ok := client.(sdk.SessionClient)
	if !ok || size <= 0 {
		return DirectUpload(p, client, name, size, md5)
	}
	t0 := p.Now()
	ck.abandonHop1("")
	if at, ok := client.(sdk.AttemptTagger); ok {
		// Sessions capture the key at Begin/Resume, so clearing on the
		// way out cannot untag this transfer's commit.
		at.SetAttemptID(ck.AttemptID)
		defer at.SetAttemptID("")
	}
	var sess sdk.UploadSession
	if ck.HasSession && ck.Session.Provider == client.ProviderName() {
		if r, ok := client.(sdk.SessionResumer); ok {
			if s, err := r.Resume(p, ck.Session); err == nil {
				sess = s
			}
		}
	}
	if sess == nil {
		s, err := sc.BeginUpload(p, name, size, md5)
		if err != nil {
			return Report{}, fmt.Errorf("core: direct begin: %w", err)
		}
		sess = s
	}
	start := sess.Written()
	checkpoint := func() {
		if ts, ok := sess.(sdk.TokenSession); ok {
			ck.Session, ck.HasSession = ts.Token(), true
		}
	}
	checkpoint()
	var info sdk.FileInfo
	for sess.Written() < size {
		if ck.AbortRequested() {
			// Cooperative stall abort at the chunk boundary: the session
			// token is checkpointed, so another route picks up from here.
			checkpoint()
			ck.observeHop2(start, sess.Written())
			return Report{}, fmt.Errorf("core: direct upload %q at %.0f: %w", name, sess.Written(), ErrStall)
		}
		n := min(float64(DefaultResumeChunk), size-sess.Written())
		last := sess.Written()+n >= size
		fi, err := sess.WriteChunk(p, n, last)
		if err != nil {
			checkpoint()
			ck.observeHop2(start, sess.Written())
			return Report{}, fmt.Errorf("core: direct upload at %.0f: %w", sess.Written(), err)
		}
		checkpoint()
		ck.noteProgress(sess.Written())
		info = fi
	}
	ck.observeHop2(start, sess.Written())
	if err := ck.verifyDigest(md5, info.MD5); err != nil {
		return Report{}, fmt.Errorf("core: direct upload %q: %w", name, err)
	}
	ck.HasSession = false // consumed: the upload committed
	d := float64(p.Now() - t0)
	return Report{Route: DirectRoute, Total: d, Hop2: d, Info: info}, nil
}

// UploadResumable is the checkpoint-aware store-and-forward detour. The
// first hop resumes from the DTN daemon's confirmed partial offset (its
// disk is ground truth) and skips entirely when an identical copy is
// already staged; the second hop relays through a resumable provider
// session whose token rides in the checkpoint. The checkpoint is
// updated on both success and failure, so the next attempt — on this
// route or another — continues rather than restarts.
func (d *DetourClient) UploadResumable(p *simproc.Proc, provider, name string, size float64, md5 string, ck *Checkpoint) (Report, error) {
	t0 := p.Now()

	// Hop 1: client -> DTN over resumable rsync.
	h0 := p.Now()
	st, err := d.Rsync.Stat(p, name)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour hop1 stat: %w", err)
	}
	switch {
	case st.Staged && st.Size == size && st.MD5 == md5:
		// An identical copy already landed (a previous attempt finished
		// hop1 before dying in hop2): skip the hop.
		if ck.Hop1Via == d.dtn {
			ck.observeHop1(size)
		} else {
			ck.abandonHop1(d.dtn)
		}
		ck.Hop1High = size
		// The copy passed the size+digest gate, but its bytes may have
		// rotted on the DTN's disk while nobody was looking (we may be a
		// crash-replayed attempt hours later). Verify the chunk manifest
		// and repair only the damaged chunks — re-sending one 8 MB chunk
		// instead of discarding the whole staged file is the point of
		// chunk-level integrity.
		if sums, merr := d.Rsync.Manifest(p, name); merr == nil {
			for _, idx := range rsyncx.VerifyManifest(sums, md5) {
				span := rsyncx.ChunkSpan(size, idx)
				if rerr := d.Rsync.RepairChunk(p, name, idx, span); rerr != nil {
					return Report{}, fmt.Errorf("core: detour chunk repair %q[%d]: %w", name, idx, rerr)
				}
				ck.ChunkRepairs++
				ck.BytesRewritten += span
			}
		}
		ck.noteProgress(size)
	default:
		offset := st.Partial
		ck.abandonHop1(d.dtn)
		ck.observeHop1(offset)
		if ck.OnProgress != nil {
			// Live hop-1 feed for the stall watchdog: the chunked push
			// reports each acked chunk as it lands on the DTN's disk.
			d.Rsync.Progress = func(sent float64) { ck.noteProgress(offset + sent) }
			defer func() { d.Rsync.Progress = nil }()
		}
		// Cooperative stall abort between chunks: the daemon's per-chunk
		// acks are the only place a push blocked on a dying staging disk
		// can be given up on.
		d.Rsync.Abort = ck.AbortRequested
		defer func() { d.Rsync.Abort = nil }()
		sent, err := d.Rsync.PushSizedResumable(p, name, size, offset, DefaultResumeChunk, md5)
		if high := offset + sent; high > ck.Hop1High {
			ck.Hop1High = high
		}
		if err != nil {
			if errors.Is(err, rsyncx.ErrAborted) {
				return Report{}, fmt.Errorf("core: detour hop1 %q at %.0f: %w", name, ck.Hop1High, ErrStall)
			}
			return Report{}, fmt.Errorf("core: detour hop1: %w", err)
		}
	}
	hop1 := float64(p.Now() - h0)

	// Hop 2: DTN -> provider through a detached resumable relay the
	// client polls. Watching instead of blocking buys two things: the
	// watchdog gets a live hop-2 watermark every poll, and a stalled
	// client can give up (cooperative abort), parking the relay at its
	// next chunk boundary with the staged file and provider session
	// intact for whichever route retries.
	c, err := d.tn.Dial(p, d.from, d.dtn, AgentPort, transport.DialOpts{})
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent dial: %w", err)
	}
	defer c.Close()
	req := relayResume{Name: name, Provider: provider, Scope: p.Scope(), AttemptID: ck.AttemptID}
	if ck.HasSession && ck.Session.Provider == provider {
		req.HasToken, req.Token = true, ck.Session
	}
	msg, err := c.Exchange(p, req, ctrlBytes)
	if err != nil {
		return Report{}, fmt.Errorf("core: detour agent: %w", err)
	}
	res, ok := msg.Payload.(relayResult)
	if !ok {
		return Report{}, fmt.Errorf("core: detour agent sent %T", msg.Payload)
	}
	if !res.OK {
		// Refused outright (draining, protocol error) — nothing started.
		return Report{}, fmt.Errorf("core: detour hop2: %s", res.Err)
	}
	for !res.Done {
		if ck.AbortRequested() {
			// Ask the DTN to park the relay at its next chunk boundary
			// (best effort — a dead control channel is fine), then bail.
			// The staged file and the provider session both survive: the
			// checkpoint keeps the token, so the next attempt — any route —
			// resumes from whatever landed.
			_, _ = c.Exchange(p, relayAbort{Name: name}, ctrlBytes)
			if res.HasToken {
				ck.observeHop2(res.StartOffset, res.Written)
			}
			return Report{}, fmt.Errorf("core: detour hop2 %q at %.0f: %w", name, ck.Hop2High, ErrStall)
		}
		p.Sleep(relayPollInterval)
		msg, err := c.Exchange(p, relayPoll{Name: name}, ctrlBytes)
		if err != nil {
			if res.HasToken {
				ck.observeHop2(res.StartOffset, res.Written)
			}
			return Report{}, fmt.Errorf("core: detour agent: %w", err)
		}
		if res, ok = msg.Payload.(relayResult); !ok {
			return Report{}, fmt.Errorf("core: detour agent sent %T", msg.Payload)
		}
		if res.HasToken {
			// Token and watermark only; Hop2High accounting is settled
			// once, by observeHop2, when this attempt ends.
			ck.Session, ck.HasSession = res.Token, true
			ck.noteProgress(size + res.Written)
		}
	}
	if res.HasToken {
		ck.Session, ck.HasSession = res.Token, true
		ck.observeHop2(res.StartOffset, res.Written)
		ck.noteProgress(size + res.Written)
	}
	if !res.OK {
		return Report{}, fmt.Errorf("core: detour hop2: %s", res.Err)
	}
	if err := ck.verifyDigest(md5, res.Info.MD5); err != nil {
		return Report{}, fmt.Errorf("core: detour upload %q: %w", name, err)
	}
	ck.HasSession = false // consumed: the upload committed
	rep := Report{
		Route: d.Route(),
		Total: float64(p.Now() - t0),
		Hop1:  hop1,
		Hop2:  res.Seconds,
		Info:  res.Info,
	}
	d.Trace.Emit("detour.upload.resumed", map[string]any{
		"from": d.from, "via": d.dtn, "provider": provider, "name": name,
		"bytes": size, "total": rep.Total, "hop1": rep.Hop1, "hop2": rep.Hop2,
		"rewritten": ck.BytesRewritten, "resumed": ck.BytesResumed,
	})
	return rep, nil
}
