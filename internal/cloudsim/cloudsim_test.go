package cloudsim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"detournet/internal/fluid"
	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

func TestObjectStoreBasics(t *testing.T) {
	s := NewObjectStore(simclock.NewEngine())
	o, err := s.Put("a.bin", 100, "md5a")
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != "f-0" || o.Size != 100 {
		t.Fatalf("object = %+v", o)
	}
	if got, ok := s.Get("a.bin"); !ok || got != o {
		t.Fatal("Get failed")
	}
	if got, ok := s.GetByID("f-0"); !ok || got != o {
		t.Fatal("GetByID failed")
	}
	if s.Used() != 100 || s.Len() != 1 {
		t.Fatalf("Used=%v Len=%d", s.Used(), s.Len())
	}
	if !s.Delete("a.bin") {
		t.Fatal("Delete reported false")
	}
	if s.Delete("a.bin") {
		t.Fatal("double delete reported true")
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatalf("after delete: Used=%v Len=%d", s.Used(), s.Len())
	}
}

func TestObjectStoreValidation(t *testing.T) {
	s := NewObjectStore(simclock.NewEngine())
	if _, err := s.Put("", 1, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Put("x", -1, ""); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestObjectStoreReplaceFreesOldBytes(t *testing.T) {
	s := NewObjectStore(simclock.NewEngine())
	s.Quota = 150
	if _, err := s.Put("a", 100, ""); err != nil {
		t.Fatal(err)
	}
	// Replacing a 100-byte object with 120 bytes fits a 150 quota.
	if _, err := s.Put("a", 120, ""); err != nil {
		t.Fatalf("replace within quota failed: %v", err)
	}
	if s.Used() != 120 {
		t.Fatalf("Used = %v", s.Used())
	}
	if _, err := s.Put("b", 100, ""); err == nil {
		t.Fatal("over-quota put accepted")
	}
	// Old ID is gone after replace.
	if _, ok := s.GetByID("f-0"); ok {
		t.Fatal("stale ID still resolves")
	}
}

func TestObjectStoreListSorted(t *testing.T) {
	s := NewObjectStore(simclock.NewEngine())
	for _, n := range []string{"c", "a", "b"} {
		if _, err := s.Put(n, 1, ""); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{}
	for _, o := range s.List() {
		names = append(names, o.Name)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("List order = %v", names)
	}
}

func TestParseContentRange(t *testing.T) {
	lo, hi, total, err := parseContentRange("bytes 0-99/1000")
	if err != nil || lo != 0 || hi != 99 || total != 1000 {
		t.Fatalf("parse: %v %v %v %v", lo, hi, total, err)
	}
	_, _, total, err = parseContentRange("bytes 100-199/*")
	if err != nil || total != -1 {
		t.Fatalf("wildcard total: %v %v", total, err)
	}
	for _, bad := range []string{"", "bytes", "bytes 5-2/10", "bytes x-y/z", "octets 0-1/2"} {
		if _, _, _, err := parseContentRange(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestPropertyParseContentRangeRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		lo := float64(a % 1000000)
		span := float64(b%1000000) + 1
		hi := lo + span - 1
		total := hi + 1
		gotLo, gotHi, gotTotal, err := parseContentRange(
			"bytes " + fmtF(lo) + "-" + fmtF(hi) + "/" + fmtF(total))
		return err == nil && gotLo == lo && gotHi == hi && gotTotal == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtF(x float64) string { return fmt.Sprintf("%.0f", x) }

// protocol-level error-path tests via raw HTTP requests

type rig struct {
	eng *simclock.Engine
	r   *simproc.Runner
	tn  *transport.Net
	svc *Service
	tok string
}

func newRig(t *testing.T, style Style) *rig {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	g.MustAddNode(&topology.Node{Name: "client", Kind: topology.Host, RespondsICMP: true})
	g.MustAddNode(&topology.Node{Name: "dc", Kind: topology.Host, RespondsICMP: true})
	g.MustConnect("client", "dc", topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.01})
	tn := transport.NewNet(g, r, tcpmodel.Params{})
	svc := NewService(eng, tn, style.String(), "dc", style)
	svc.Start(tn)
	return &rig{eng: eng, r: r, tn: tn, svc: svc}
}

func (rg *rig) do(t *testing.T, fn func(p *simproc.Proc, c *httpsim.Client, auth string)) {
	t.Helper()
	rt := rg.svc.Auth.RegisterClient("x", "y")
	done := false
	rg.r.Go("t", func(p *simproc.Proc) {
		c := httpsim.NewClient(rg.tn, "client", APIPort, true)
		// Fetch a token manually through the token endpoint.
		resp, err := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/oauth2/token", Host: "dc",
			Body: []byte("grant_type=refresh_token&client_id=x&client_secret=y&refresh_token=" + rt),
		})
		if err != nil || !resp.OK() {
			t.Errorf("token fetch: %v %v", resp, err)
			return
		}
		body := string(resp.Body)
		i := strings.Index(body, `"access_token":"`)
		tok := body[i+len(`"access_token":"`):]
		tok = tok[:strings.Index(tok, `"`)]
		fn(p, c, "Bearer "+tok)
		c.CloseIdle()
		done = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func TestGDriveOffsetMismatchRejected(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/upload/drive/v3/files?uploadType=resumable", Host: "dc",
			Header: map[string]string{"Authorization": auth},
			Body:   []byte(`{"name":"f","size":100}`),
		})
		loc := resp.Header["Location"]
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: loc, Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Content-Range": "bytes 50-99/100"},
			BodySize: 50,
		})
		if resp.Status != httpsim.StatusConflict {
			t.Errorf("out-of-order chunk got %d, want 409", resp.Status)
		}
	})
}

func TestGDriveUnknownSession(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "PUT", Path: "/upload/drive/v3/sessions/sess-999", Host: "dc",
			Header: map[string]string{"Authorization": auth}, BodySize: 10,
		})
		if resp.Status != httpsim.StatusNotFound {
			t.Errorf("unknown session got %d", resp.Status)
		}
	})
}

func TestGDriveNonResumableRejected(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/upload/drive/v3/files?uploadType=media", Host: "dc",
			Header: map[string]string{"Authorization": auth},
			Body:   []byte(`{"name":"f"}`),
		})
		if resp.Status != httpsim.StatusBadRequest {
			t.Errorf("media upload got %d", resp.Status)
		}
	})
}

func TestDropboxMissingArgRejected(t *testing.T) {
	rg := newRig(t, Dropbox)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/2/files/upload", Host: "dc",
			Header: map[string]string{"Authorization": auth}, BodySize: 100,
		})
		if resp.Status != httpsim.StatusBadRequest {
			t.Errorf("missing arg got %d", resp.Status)
		}
	})
}

func TestDropboxWrongOffsetRejected(t *testing.T) {
	rg := newRig(t, Dropbox)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/2/files/upload_session/start", Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Dropbox-API-Arg": "{}"},
			BodySize: 100,
		})
		body := string(resp.Body)
		i := strings.Index(body, `"session_id":"`)
		sid := body[i+len(`"session_id":"`):]
		sid = sid[:strings.Index(sid, `"`)]
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/2/files/upload_session/append_v2", Host: "dc",
			Header: map[string]string{
				"Authorization":   auth,
				"Dropbox-API-Arg": `{"cursor":{"session_id":"` + sid + `","offset":999}}`,
			},
			BodySize: 100,
		})
		if resp.Status != httpsim.StatusConflict {
			t.Errorf("wrong offset got %d", resp.Status)
		}
	})
}

func TestOneDriveRequiresContentRange(t *testing.T) {
	rg := newRig(t, OneDrive)
	rg.do(t, func(p *simproc.Proc, c *httpsim.Client, auth string) {
		resp, _ := c.Do(p, &httpsim.Request{
			Method: "POST", Path: "/v1.0/drive/root:/f.bin:/createUploadSession", Host: "dc",
			Header: map[string]string{"Authorization": auth},
		})
		body := string(resp.Body)
		i := strings.Index(body, `"uploadUrl":"`)
		u := body[i+len(`"uploadUrl":"`):]
		u = u[:strings.Index(u, `"`)]
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: u, Host: "dc",
			Header: map[string]string{"Authorization": auth}, BodySize: 100,
		})
		if resp.Status != httpsim.StatusBadRequest {
			t.Errorf("fragment without Content-Range got %d", resp.Status)
		}
		// Wildcard total also rejected.
		resp, _ = c.Do(p, &httpsim.Request{
			Method: "PUT", Path: u, Host: "dc",
			Header:   map[string]string{"Authorization": auth, "Content-Range": "bytes 0-99/*"},
			BodySize: 100,
		})
		if resp.Status != httpsim.StatusBadRequest {
			t.Errorf("wildcard total got %d", resp.Status)
		}
	})
}

func TestUnauthorizedWithoutToken(t *testing.T) {
	rg := newRig(t, GoogleDrive)
	done := false
	rg.r.Go("t", func(p *simproc.Proc) {
		c := httpsim.NewClient(rg.tn, "client", APIPort, true)
		resp, err := c.Do(p, &httpsim.Request{
			Method: "GET", Path: "/drive/v3/files", Host: "dc",
		})
		if err != nil {
			t.Error(err)
		} else if resp.Status != httpsim.StatusUnauthorized {
			t.Errorf("no-token request got %d", resp.Status)
		}
		c.CloseIdle()
		done = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("did not finish")
	}
}

func TestStyleStringsAndChunks(t *testing.T) {
	if GoogleDrive.String() != "GoogleDrive" || Dropbox.String() != "Dropbox" || OneDrive.String() != "OneDrive" {
		t.Fatal("style names")
	}
	if GoogleDrive.DefaultChunkBytes() != 8<<20 || Dropbox.DefaultChunkBytes() != 4<<20 || OneDrive.DefaultChunkBytes() != 10<<20 {
		t.Fatal("chunk defaults")
	}
	if !strings.HasPrefix(Style(99).String(), "Style(") {
		t.Fatal("unknown style string")
	}
}
