package sched

import (
	"errors"
	"fmt"
	"testing"
)

// mustPush pushes with no expectation of expiry or rejection.
func mustPush(t *testing.T, q *jobQueue, j Job, now float64) {
	t.Helper()
	exp, err := q.push(j, now)
	if err != nil {
		t.Fatalf("push(%q): %v", j.Name, err)
	}
	if len(exp) != 0 {
		t.Fatalf("push(%q) expired %d jobs unexpectedly", j.Name, len(exp))
	}
}

// popName pops one job, failing the test on close or an empty sweep.
func popName(t *testing.T, q *jobQueue) string {
	t.Helper()
	it, exp, ok := q.pop()
	if !ok || it == nil {
		t.Fatalf("pop: ok=%v it=%v (expired %d)", ok, it, len(exp))
	}
	return it.job.Name
}

func TestQueueOrdering(t *testing.T) {
	q := newJobQueue(queueOpts{})
	// Same priority: FIFO.
	mustPush(t, q, Job{Name: "a", Priority: 1}, 0)
	mustPush(t, q, Job{Name: "b", Priority: 1}, 0)
	// Higher priority jumps ahead.
	mustPush(t, q, Job{Name: "c", Priority: 5}, 0)
	// Deadlines break priority ties: earlier first, none last.
	mustPush(t, q, Job{Name: "d", Priority: 1, Deadline: 10}, 0)
	mustPush(t, q, Job{Name: "e", Priority: 1, Deadline: 5}, 0)

	want := []string{"c", "e", "d", "a", "b"}
	for i, w := range want {
		if got := popName(t, q); got != w {
			t.Fatalf("pop[%d] = %q, want %q", i, got, w)
		}
	}
	if q.length() != 0 {
		t.Fatalf("queue not empty: %d", q.length())
	}
}

func TestQueueFIFOWithinLevel(t *testing.T) {
	q := newJobQueue(queueOpts{})
	const n = 100
	for i := 0; i < n; i++ {
		mustPush(t, q, Job{Name: fmt.Sprintf("j%03d", i), Priority: 2}, 0)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("j%03d", i); popName(t, q) != want {
			t.Fatalf("pop[%d] != %s", i, want)
		}
	}
}

func TestQueueCloseWakesReceivers(t *testing.T) {
	q := newJobQueue(queueOpts{})
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, ok := q.pop()
			done <- ok
		}()
	}
	q.close()
	for i := 0; i < 4; i++ {
		if ok := <-done; ok {
			t.Fatal("pop returned ok=true after close")
		}
	}
	// tryPop still drains anything left behind.
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop on empty closed queue returned a job")
	}
}

func TestQueueBoundedRejects(t *testing.T) {
	q := newJobQueue(queueOpts{limit: 2})
	mustPush(t, q, Job{Tenant: "a", Name: "1"}, 0)
	mustPush(t, q, Job{Tenant: "a", Name: "2"}, 0)
	_, err := q.push(Job{Tenant: "a", Name: "3"}, 0)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over limit: err=%v, want ErrQueueFull", err)
	}
	// A pop frees a slot.
	popName(t, q)
	mustPush(t, q, Job{Tenant: "a", Name: "3"}, 0)
}

func TestQueueTenantQuota(t *testing.T) {
	q := newJobQueue(queueOpts{limit: 10, tenantLimit: 2})
	mustPush(t, q, Job{Tenant: "hog", Name: "1"}, 0)
	mustPush(t, q, Job{Tenant: "hog", Name: "2"}, 0)
	_, err := q.push(Job{Tenant: "hog", Name: "3"}, 0)
	if !errors.Is(err, ErrTenantQuota) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("tenant over quota: err=%v, want ErrTenantQuota (matching ErrQueueFull)", err)
	}
	// Other tenants still have room.
	mustPush(t, q, Job{Tenant: "meek", Name: "4"}, 0)
}

func TestQueueExpiresInPlace(t *testing.T) {
	now := 0.0
	q := newJobQueue(queueOpts{now: func() float64 { return now }})
	mustPush(t, q, Job{Tenant: "a", Name: "dead", Deadline: 5}, 0)
	mustPush(t, q, Job{Tenant: "a", Name: "alive"}, 0)
	now = 10
	it, exp, ok := q.pop()
	if !ok || it == nil {
		t.Fatalf("pop: ok=%v it=%v", ok, it)
	}
	if it.job.Name != "alive" {
		t.Fatalf("pop = %q, want the un-expired job", it.job.Name)
	}
	if len(exp) != 1 || exp[0].job.Name != "dead" {
		t.Fatalf("expired = %v, want [dead]", exp)
	}
	if q.length() != 0 {
		t.Fatalf("length = %d after expiry", q.length())
	}
}

// A full queue frees slots held by dead jobs before rejecting.
func TestQueuePushSweepsDeadJobs(t *testing.T) {
	now := 0.0
	q := newJobQueue(queueOpts{limit: 1, now: func() float64 { return now }})
	mustPush(t, q, Job{Tenant: "a", Name: "dead", Deadline: 5}, 0)
	now = 10
	exp, err := q.push(Job{Tenant: "a", Name: "fresh"}, now)
	if err != nil {
		t.Fatalf("push after sweep: %v", err)
	}
	if len(exp) != 1 || exp[0].job.Name != "dead" {
		t.Fatalf("expired = %v, want [dead]", exp)
	}
	if got := popName(t, q); got != "fresh" {
		t.Fatalf("pop = %q, want fresh", got)
	}
}

// DRR fair mode: a flooding tenant cannot starve a light one at the
// same priority, and weights skew the shares.
func TestQueueDRRFairness(t *testing.T) {
	q := newJobQueue(queueOpts{fair: true, quantum: 1e6})
	const size = 1e6
	for i := 0; i < 50; i++ {
		mustPush(t, q, Job{Tenant: "hog", Name: fmt.Sprintf("h%02d", i), Size: size}, 0)
	}
	for i := 0; i < 5; i++ {
		mustPush(t, q, Job{Tenant: "meek", Name: fmt.Sprintf("m%02d", i), Size: size}, 0)
	}
	// In the first 10 pops, meek — despite submitting last and 10× less
	// — should get ~half the service.
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		it, _, ok := q.pop()
		if !ok || it == nil {
			t.Fatal("pop failed")
		}
		counts[it.job.Tenant]++
	}
	if counts["meek"] < 4 {
		t.Fatalf("meek got %d of first 10 pops; DRR should interleave (counts=%v)", counts["meek"], counts)
	}
}

// Priority still strictly dominates DRR: all high-priority jobs drain
// before any low-priority ones regardless of tenant balance.
func TestQueueDRRPriorityDominates(t *testing.T) {
	q := newJobQueue(queueOpts{fair: true})
	mustPush(t, q, Job{Tenant: "a", Name: "low1", Priority: 1, Size: 1}, 0)
	mustPush(t, q, Job{Tenant: "b", Name: "low2", Priority: 1, Size: 1}, 0)
	mustPush(t, q, Job{Tenant: "a", Name: "high1", Priority: 9, Size: 1}, 0)
	mustPush(t, q, Job{Tenant: "b", Name: "high2", Priority: 9, Size: 1}, 0)
	first, second := popName(t, q), popName(t, q)
	if first[:4] != "high" || second[:4] != "high" {
		t.Fatalf("pops = %q, %q; want both high-priority first", first, second)
	}
}

func TestQueueDRRWeights(t *testing.T) {
	q := newJobQueue(queueOpts{
		fair:    true,
		quantum: 1e6,
		weights: map[string]float64{"gold": 3, "bronze": 1},
	})
	const size = 1e6
	for i := 0; i < 40; i++ {
		mustPush(t, q, Job{Tenant: "gold", Name: fmt.Sprintf("g%02d", i), Size: size}, 0)
		mustPush(t, q, Job{Tenant: "bronze", Name: fmt.Sprintf("b%02d", i), Size: size}, 0)
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		it, _, ok := q.pop()
		if !ok || it == nil {
			t.Fatal("pop failed")
		}
		counts[it.job.Tenant]++
	}
	if counts["gold"] < 2*counts["bronze"] {
		t.Fatalf("gold/bronze = %d/%d; 3:1 weights should skew service (counts=%v)",
			counts["gold"], counts["bronze"], counts)
	}
}
