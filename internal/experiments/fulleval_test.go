package experiments

import (
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
)

// TestFullEvaluationTableI runs the entire evaluation at the full
// protocol and checks every Table I cell's headline label in one place —
// the one-stop "does the reproduction still hold" test.
func TestFullEvaluationTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol; skipped with -short")
	}
	s := Run(Default())
	type expect struct {
		client, provider string
		fastestKind      core.RouteKind
		fastestVia       string // checked only for detours; "" = any
		slowestKind      core.RouteKind
	}
	// Paper Table I, with our one documented divergence (Purdue→OneDrive
	// detour-favoured in aggregate; see EXPERIMENTS.md).
	table := []expect{
		{scenario.UBC, scenario.GoogleDrive, core.Detour, scenario.UAlberta, core.Detour},
		{scenario.UBC, scenario.Dropbox, core.Direct, "", core.Detour},
		{scenario.UBC, scenario.OneDrive, core.Direct, "", core.Detour},
		{scenario.Purdue, scenario.GoogleDrive, core.Detour, "", core.Direct},
		{scenario.Purdue, scenario.Dropbox, core.Direct, "", core.Detour},
		{scenario.Purdue, scenario.OneDrive, core.Detour, scenario.UAlberta, core.Direct},
		{scenario.UCLA, scenario.GoogleDrive, core.Direct, "", core.Detour},
		{scenario.UCLA, scenario.Dropbox, core.Direct, "", core.Detour},
		{scenario.UCLA, scenario.OneDrive, core.Direct, "", core.Detour},
	}
	for _, e := range table {
		g := s.Pair(e.client, e.provider).Grid
		fast, slow := g.OverallFastest()
		if fast.Kind != e.fastestKind {
			t.Errorf("%s -> %s fastest = %v, want kind %v", e.client, e.provider, fast, e.fastestKind)
		}
		if e.fastestVia != "" && fast.Via != e.fastestVia {
			t.Errorf("%s -> %s fastest via %q, want %q", e.client, e.provider, fast.Via, e.fastestVia)
		}
		if slow.Kind != e.slowestKind {
			t.Errorf("%s -> %s slowest = %v, want kind %v", e.client, e.provider, slow, e.slowestKind)
		}
	}

	// Cross-cutting invariants of the whole suite.
	for _, c := range scenario.Clients {
		for _, prov := range scenario.ProviderNames {
			g := s.Pair(c, prov).Grid
			for _, route := range g.Spec.Routes {
				series := g.Series(route)
				for i := 1; i < len(series); i++ {
					// Mean transfer time is not wildly non-monotone in
					// size. Congestion episodes produce real dips (the
					// paper's own Table III has 586 s at 40 MB vs 558 s
					// at 50 MB), so only flag collapses below 30%.
					if series[i] < series[i-1]*0.3 {
						t.Errorf("%s->%s %v: time dropped %v -> %v between sizes",
							c, prov, route, series[i-1], series[i])
					}
				}
			}
		}
	}
}
