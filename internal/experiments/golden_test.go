package experiments

import (
	"math"
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
)

// TestGoldenNumbers pins the committed EXPERIMENTS.md values at the
// default seed and full protocol. The simulation is deterministic, so
// these should reproduce exactly; the 1 % tolerance only allows for
// intentional non-behavioural refactors (e.g. float re-association).
// If a calibration change moves these numbers on purpose, update both
// this table and EXPERIMENTS.md.
func TestGoldenNumbers(t *testing.T) {
	s := &Suite{Options: Default()}
	ualb := core.ViaRoute(scenario.UAlberta)
	umich := core.ViaRoute(scenario.UMich)
	golden := []struct {
		client, provider string
		route            core.Route
		sizeMB           int
		want             float64
	}{
		// Table II (UBC -> Google Drive).
		{scenario.UBC, scenario.GoogleDrive, core.DirectRoute, 100, 87.26},
		{scenario.UBC, scenario.GoogleDrive, ualb, 100, 38.28},
		{scenario.UBC, scenario.GoogleDrive, umich, 100, 122.64},
		{scenario.UBC, scenario.GoogleDrive, core.DirectRoute, 10, 8.82},
		{scenario.UBC, scenario.GoogleDrive, ualb, 10, 4.05},
		// Table III (Purdue -> Google Drive).
		{scenario.Purdue, scenario.GoogleDrive, core.DirectRoute, 100, 823.00},
		{scenario.Purdue, scenario.GoogleDrive, ualb, 100, 200.34},
		{scenario.Purdue, scenario.GoogleDrive, umich, 100, 194.46},
		// Table IV rows (Purdue, 100 MB means).
		{scenario.Purdue, scenario.Dropbox, core.DirectRoute, 100, 181.96},
		{scenario.Purdue, scenario.Dropbox, ualb, 100, 264.84},
		{scenario.Purdue, scenario.OneDrive, core.DirectRoute, 100, 304.90},
		{scenario.Purdue, scenario.OneDrive, ualb, 100, 206.86},
		// Fig 10 (UCLA last-mile bound).
		{scenario.UCLA, scenario.GoogleDrive, core.DirectRoute, 100, 267.85},
	}
	for _, g := range golden {
		got := s.Mean(g.client, g.provider, g.route, g.sizeMB)
		if math.Abs(got-g.want)/g.want > 0.01 {
			t.Errorf("%s -> %s %v %dMB = %.2f, want %.2f (±1%%)",
				g.client, g.provider, g.route, g.sizeMB, got, g.want)
		}
	}
}

// TestGoldenTableIVStdDev pins the variance signature of the Purdue
// rows: direct OneDrive at 100 MB keeps a large standard deviation and
// the 60 MB ±1σ intervals overlap (the paper's Sec III-B argument).
func TestGoldenTableIVStdDev(t *testing.T) {
	s := &Suite{Options: Default()}
	od := s.Pair(scenario.Purdue, scenario.OneDrive).Grid
	direct100 := od.Cell(100, core.DirectRoute).Summary
	if direct100.StdDev < 30 {
		t.Errorf("Purdue->OneDrive direct 100MB stddev = %.1f, want large (>=30)", direct100.StdDev)
	}
	direct60 := od.Cell(60, core.DirectRoute).Summary
	det60 := od.Cell(60, core.ViaRoute(scenario.UAlberta)).Summary
	if !direct60.Overlaps(det60) {
		t.Errorf("60MB OneDrive ±1σ intervals should overlap: %+v vs %+v", direct60, det60)
	}
}
