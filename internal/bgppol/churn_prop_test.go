package bgppol

import (
	"errors"
	"math/rand"
	"testing"
)

// Property: staged convergence never launders a valley path. Every
// intermediate snapshot a domain can forward with — not just the base
// and final policies — must export only valley-free routes, and the
// mixed-version walk must always terminate in a path or a typed
// anomaly, never spin.
//
// The test drives random Gao–Rexford policies through random
// withdraw/announce churn and checks every snapshot in the version
// chain against the ValleyFree oracle.

// randPolicy builds a random valley-free economy: a provider DAG
// (domain i buys transit from one or two earlier domains) plus a few
// peerings where no transit relationship exists.
func randPolicy(rng *rand.Rand, n int) *Policy {
	p := NewPolicy()
	name := func(i int) string { return string(rune('a' + i)) }
	for i := 1; i < n; i++ {
		for _, j := range rng.Perm(i)[:1+rng.Intn(min(i, 2))] {
			// Ignore duplicates from the loop below re-rolling.
			_ = p.AddCustomerProvider(name(i), name(j))
		}
	}
	for tries := 0; tries < n; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			_ = p.AddPeer(name(a), name(b)) // rejected over existing transit; fine
		}
	}
	return p
}

// sessions lists every live relationship in p as domain pairs.
func sessions(p *Policy) [][2]string {
	var out [][2]string
	doms := p.Domains()
	for i, a := range doms {
		for _, b := range doms[i+1:] {
			if p.Relationship(a, b) != RelNone {
				out = append(out, [2]string{a, b})
			}
		}
	}
	return out
}

func TestChurnNeverExportsValleyPath(t *testing.T) {
	rng := rand.New(rand.NewSource(0x76616c6c))
	for trial := 0; trial < 40; trial++ {
		base := randPolicy(rng, 5+rng.Intn(5))
		now := 0.0
		d := NewDynamic(base, func() float64 { return now }, rng, 2, 12)

		withdrawn := make([][2]string, 0, 8)
		for step := 0; step < 12; step++ {
			now += rng.Float64() * 8
			if len(withdrawn) > 0 && rng.Float64() < 0.4 {
				i := rng.Intn(len(withdrawn))
				s := withdrawn[i]
				if err := d.AnnounceSession(s[0], s[1]); err != nil {
					t.Fatalf("trial %d: announce %v: %v", trial, s, err)
				}
				withdrawn = append(withdrawn[:i], withdrawn[i+1:]...)
			} else if live := sessions(d.Current()); len(live) > 0 {
				s := live[rng.Intn(len(live))]
				if err := d.WithdrawSession(s[0], s[1]); err != nil {
					t.Fatalf("trial %d: withdraw %v: %v", trial, s, err)
				}
				withdrawn = append(withdrawn, s)
			}

			// The mixed-version walk terminates: a path or a typed
			// anomaly for every pair, mid-window included.
			doms := d.Current().Domains()
			for _, src := range doms {
				for _, dst := range doms {
					if src == dst {
						continue
					}
					_, err := d.DomainPathAt(src, dst)
					if err != nil && !errors.Is(err, ErrNoRoute) &&
						!errors.Is(err, ErrBlackhole) && !errors.Is(err, ErrLoop) {
						t.Fatalf("trial %d step %d: %s->%s: untyped %v", trial, step, src, dst, err)
					}
				}
			}
		}

		// Every intermediate RIB any domain ever forwarded with must be
		// valley-free on its own terms.
		for v, snap := range d.versions {
			doms := snap.Domains()
			for _, src := range doms {
				for _, dst := range doms {
					if src == dst {
						continue
					}
					path, err := snap.DomainPath(src, dst)
					if err != nil {
						continue // no route in this snapshot: nothing exported
					}
					if !snap.ValleyFree(path) {
						t.Fatalf("trial %d version %d: %s->%s exported valley path %v",
							trial, v, src, dst, path)
					}
				}
			}
		}
	}
}
