// Detour selection: the paper stops at manually identifying the best
// detour ("we have not implemented an automatic detour selection
// algorithm"). This example runs the probe-based selector for every
// client × provider pair, prints its choice, then validates it against
// the actually-measured best route.
package main

import (
	"fmt"

	"detournet/internal/core"
	"detournet/internal/detourselect"
	"detournet/internal/fileutil"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

func main() {
	const sizeMB = 60
	fmt.Printf("Automatic detour selection for %d MB uploads\n", sizeMB)
	fmt.Printf("%-12s %-12s %-16s %-16s %s\n", "CLIENT", "PROVIDER", "SELECTED", "MEASURED BEST", "AGREE")

	for _, client := range scenario.Clients {
		for _, provider := range scenario.ProviderNames {
			// Fresh world per pair keeps probes from heating each other's
			// caches or connections.
			w := scenario.Build(4242)
			w.RunWorkload("select", func(p *simproc.Proc) {
				direct := w.NewSDKClient(client, provider)
				defer direct.Close()
				detours := map[string]*core.DetourClient{}
				for _, dtn := range scenario.DTNs {
					detours[dtn] = w.NewDetourClient(client, dtn)
				}

				sel := detourselect.NewSelector()
				chosen, _, err := sel.Choose(p, direct, detours, provider, sizeMB*fileutil.MB)
				if err != nil {
					panic(err)
				}

				// Ground truth: actually run every route once.
				best := core.DirectRoute
				bestT := 0.0
				for i, route := range scenario.Routes() {
					f := fileutil.New(fmt.Sprintf("sel-%d.bin", i), sizeMB*fileutil.MB, int64(i))
					rep, err := core.Upload(p, route, direct, detours, provider, f.Name, f.Size, f.MD5)
					if err != nil {
						panic(err)
					}
					if i == 0 || rep.Total < bestT {
						best, bestT = route, rep.Total
					}
				}
				agree := "yes"
				if chosen != best {
					agree = "no"
				}
				fmt.Printf("%-12s %-12s %-16s %-16s %s\n", client, provider, chosen, best, agree)
			})
		}
	}
}
