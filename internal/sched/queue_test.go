package sched

import (
	"fmt"
	"testing"
)

func TestQueueOrdering(t *testing.T) {
	q := newJobQueue()
	// Same priority: FIFO.
	q.push(Job{Name: "a", Priority: 1})
	q.push(Job{Name: "b", Priority: 1})
	// Higher priority jumps ahead.
	q.push(Job{Name: "c", Priority: 5})
	// Deadlines break priority ties: earlier first, none last.
	q.push(Job{Name: "d", Priority: 1, Deadline: 10})
	q.push(Job{Name: "e", Priority: 1, Deadline: 5})

	want := []string{"c", "e", "d", "a", "b"}
	for i, w := range want {
		j, ok := q.pop()
		if !ok || j.Name != w {
			t.Fatalf("pop[%d] = %q ok=%v, want %q", i, j.Name, ok, w)
		}
	}
	if q.length() != 0 {
		t.Fatalf("queue not empty: %d", q.length())
	}
}

func TestQueueFIFOWithinLevel(t *testing.T) {
	q := newJobQueue()
	const n = 100
	for i := 0; i < n; i++ {
		q.push(Job{Name: fmt.Sprintf("j%03d", i), Priority: 2})
	}
	for i := 0; i < n; i++ {
		j, _ := q.pop()
		if want := fmt.Sprintf("j%03d", i); j.Name != want {
			t.Fatalf("pop[%d] = %s, want %s", i, j.Name, want)
		}
	}
}

func TestQueueCloseWakesReceivers(t *testing.T) {
	q := newJobQueue()
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func() {
			_, ok := q.pop()
			done <- ok
		}()
	}
	q.close()
	for i := 0; i < 4; i++ {
		if ok := <-done; ok {
			t.Fatal("pop returned ok=true after close")
		}
	}
	// tryPop still drains anything left behind.
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop on empty closed queue returned a job")
	}
}
