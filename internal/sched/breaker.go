package sched

import (
	"sync"

	"detournet/internal/core"
)

// BreakerState is one circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe job; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerKey names a per-route breaker. Provider-level health (outages
// affecting every route) lives under providerKey.
func breakerKey(provider string, route core.Route) string {
	return provider + "|" + route.String()
}

func providerKey(provider string) string { return provider + "|*" }

// breakerSet holds the scheduler's circuit breakers, one per key. It is
// advisory: a rejected route diverts the job to an alternate when one
// exists, but never strands a job with zero routes.
type breakerSet struct {
	mu          sync.Mutex
	threshold   int
	cooldown    float64
	now         func() float64
	m           map[string]*breaker
	transitions int64
}

type breaker struct {
	state    BreakerState
	fails    int
	openedAt float64
	// probing marks the in-flight half-open probe, so concurrent jobs
	// keep being rejected until it reports.
	probing bool
}

func newBreakerSet(threshold int, cooldown float64, now func() float64) *breakerSet {
	return &breakerSet{
		threshold: threshold, cooldown: cooldown, now: now,
		m: make(map[string]*breaker),
	}
}

// allow reports whether a job may use the key. The first call after an
// open breaker's cooldown flips it to half-open and admits the caller
// as the probe.
func (b *breakerSet) allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		return true
	}
	switch br.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now()-br.openedAt < b.cooldown {
			return false
		}
		br.state = BreakerHalfOpen
		br.probing = true
		b.transitions++
		return true
	default: // half-open
		if br.probing {
			return false
		}
		br.probing = true
		return true
	}
}

// success closes the key's breaker.
func (b *breakerSet) success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		return
	}
	if br.state != BreakerClosed {
		b.transitions++
	}
	br.state = BreakerClosed
	br.fails = 0
	br.probing = false
}

// failure records a failure: threshold consecutive failures open a
// closed breaker, and a failed half-open probe re-opens immediately.
func (b *breakerSet) failure(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		br = &breaker{}
		b.m[key] = br
	}
	switch br.state {
	case BreakerHalfOpen:
		br.state = BreakerOpen
		br.openedAt = b.now()
		br.probing = false
		b.transitions++
	case BreakerClosed:
		br.fails++
		if br.fails >= b.threshold {
			br.state = BreakerOpen
			br.openedAt = b.now()
			b.transitions++
		}
	default: // already open: a straggler's failure extends the cooldown
		br.openedAt = b.now()
	}
}

// snapshot returns each key's state plus the lifetime transition count.
func (b *breakerSet) snapshot() (map[string]string, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.m))
	for k, br := range b.m {
		out[k] = br.state.String()
	}
	return out, b.transitions
}
