// Package tracelog records structured events on the virtual timeline —
// the observability layer a production detour deployment would ship:
// which route a transfer took, how long each hop ran, what the relay
// agent did. Events serialize as JSON lines for offline analysis.
package tracelog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"detournet/internal/simclock"
)

// Event is one timestamped record.
type Event struct {
	// At is the virtual time in seconds.
	At float64 `json:"t"`
	// Kind is a dotted event name, e.g. "detour.upload.done".
	Kind string `json:"kind"`
	// Attrs carries event fields (strings and numbers).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Log collects events. The zero value is not usable; use New. A nil
// *Log is safe to emit into (no-op), so instrumented code never needs
// nil checks at call sites.
type Log struct {
	eng    *simclock.Engine
	events []Event
	// Cap bounds retained events (FIFO eviction); zero means unbounded.
	Cap int
}

// New returns an empty log on the clock.
func New(eng *simclock.Engine) *Log {
	if eng == nil {
		panic("tracelog: nil engine")
	}
	return &Log{eng: eng}
}

// Emit appends an event at the current virtual time. Emit on a nil log
// is a no-op.
func (l *Log) Emit(kind string, attrs map[string]any) {
	if l == nil {
		return
	}
	if kind == "" {
		panic("tracelog: empty event kind")
	}
	l.events = append(l.events, Event{At: float64(l.eng.Now()), Kind: kind, Attrs: attrs})
	if l.Cap > 0 && len(l.events) > l.Cap {
		l.events = l.events[len(l.events)-l.Cap:]
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Events returns a copy of the retained events in emission order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Filter returns events whose kind matches the prefix (dotted segments).
func (l *Log) Filter(prefix string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == prefix || strings.HasPrefix(e.Kind, prefix+".") {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all retained events.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
}

// WriteJSONL streams the events as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts, for quick inspection.
func (l *Log) Summary() string {
	if l == nil {
		return ""
	}
	counts := map[string]int{}
	for _, e := range l.events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-28s %d\n", k, counts[k])
	}
	return b.String()
}
