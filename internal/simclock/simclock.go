// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock and an event queue ordered by (time, sequence).
//
// Every other simulation package in this repository schedules work on an
// *Engine rather than on the wall clock, so whole-WAN experiments run in
// microseconds of real time and are bit-reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. Fluid-flow rate math is naturally expressed in floating
// point; deterministic event ordering is guaranteed by a monotonically
// increasing sequence number used as a tie-breaker, never by float
// identity tricks.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Infinity is a sentinel time that sorts after every reachable event.
var Infinity = Time(math.Inf(1))

// Event is scheduled work. Events are compared by time first and by
// insertion sequence second, so two events at the same instant always run
// in the order they were scheduled.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once removed
	fn     func()
	fired  bool
	cancel bool
}

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	// MaxEvents bounds a single Run to guard against scheduling loops in
	// buggy models. Zero means no bound.
	MaxEvents uint64
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it is always a model bug, and silently clamping
// would hide it.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("simclock: nil event func")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn d seconds from now. Negative d panics via Schedule.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.Schedule(e.now+Time(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.fired || ev.cancel || ev.index < 0 {
		return false
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	return true
}

// Reschedule moves a pending event to a new absolute time, preserving
// nothing but its callback. It reports whether the event was still
// pending. A fired or cancelled event is left alone.
func (e *Engine) Reschedule(ev *Event, at Time) bool {
	if ev == nil || ev.fired || ev.cancel || ev.index < 0 {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: reschedule at %v before now %v", at, e.now))
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.queue, ev.index)
	return true
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the time of the next event, or Infinity when the queue
// is empty.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return Infinity
	}
	return e.queue[0].at
}

// Step executes the single next event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	ev.fired = true
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty. It returns the final
// virtual time. It panics if MaxEvents is exceeded.
func (e *Engine) Run() Time {
	return e.RunUntil(Infinity)
}

// RunUntil executes events with time <= deadline and then advances the
// clock to min(deadline, next event time). Events scheduled exactly at
// the deadline do run.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("simclock: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	start := e.processed
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if e.MaxEvents > 0 && e.processed-start >= e.MaxEvents {
			panic(fmt.Sprintf("simclock: exceeded MaxEvents=%d (event loop?)", e.MaxEvents))
		}
		e.Step()
	}
	if deadline != Infinity && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// Advance moves the clock forward by d, running any events that fall in
// the window. It is RunUntil(Now()+d).
func (e *Engine) Advance(d Duration) Time {
	return e.RunUntil(e.now + Time(d))
}
