package rsyncx

import (
	"errors"
	"fmt"
	"math"

	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Port is the rsync daemon port.
const Port = 873

// Staged is a file held in a daemon's staging area (the DTN's disk).
type Staged struct {
	Name string
	Size float64
	Data []byte // nil for sized-only transfers
	MD5  string
}

// Daemon is the DTN-side rsync server: it answers signature requests,
// applies deltas, and stages the results for the second detour hop.
type Daemon struct {
	tn   *transport.Net
	host string
	// BlockSize for signatures; DefaultBlockSize when zero.
	BlockSize int
	// DiskBps, when positive, throttles the staging disk's write path to
	// this many bytes/second — the gray-failure injector's dying-disk
	// knob. Pushes still succeed (no errors, ever); they just crawl.
	DiskBps float64
	// TornWrites re-enables the legacy in-place partial write path: a
	// chunk's bytes count toward the partial before the disk write
	// completes, so a crash mid-write leaves a torn tail that passes
	// length checks (the manifest scrub is what catches it). The default
	// path is two-phase — bytes land in a temp area and promote
	// atomically — so a crash can never tear a partial.
	TornWrites bool
	// Capacity bounds the staging disk in bytes; 0 (the default) keeps
	// the legacy unbounded disk. With a bound set, pushes and stagings
	// are admitted against headroom and refused with ErrNoSpace.
	Capacity float64
	// EvictStale arms LRU eviction of stale unpinned state when an
	// admission would otherwise fail — the mitigation half of the
	// storage-pressure model; off, a full disk simply refuses writes.
	EvictStale bool
	// Evictions / EvictedBytes / OrphansSwept are the reclamation
	// counters surfaced through CapacityStats.
	Evictions    int
	EvictedBytes float64
	OrphansSwept int
	staging      map[string]*Staged
	// partials holds in-progress chunked pushes keyed by name. Like the
	// staging area this models the DTN's disk: a daemon crash loses
	// connections but not partials, which is what makes resume work.
	partials map[string]*partial
	// Pushes counts completed receive operations, for tests.
	Pushes int

	// rot marks chunks the disk has silently corrupted (bit rot, torn
	// in-place writes), keyed by name then manifest chunk index. Like
	// staging and partials it models the disk, so it survives Crash.
	rot map[string]map[int]bool
	// inflight tracks a chunk write in progress per name (bytes being
	// committed to disk right now); Crash consults it to decide what a
	// dying process leaves behind.
	inflight map[string]float64
	// epoch increments on Crash so connection handlers that survive the
	// (simulated) process death stop committing state afterwards.
	epoch int

	// Finite-disk bookkeeping (see capacity.go). reserved holds
	// admitted-but-unwritten push bytes per name; pins protect names
	// in live use from eviction; orphans are leaked *.tmp files a
	// process death left behind; touched/seq is the LRU clock.
	reserved map[string]float64
	pins     map[string]int
	orphans  map[string]float64
	touched  map[string]int
	seq      int

	l     *transport.Listener
	conns map[*transport.Conn]struct{}
}

// partial is the on-disk state of an interrupted chunked push.
type partial struct {
	size     float64 // declared final size
	received float64 // bytes confirmed on disk
	md5      string
}

// NewDaemon returns a daemon for the given DTN host.
func NewDaemon(tn *transport.Net, host string) *Daemon {
	if tn == nil {
		panic("rsyncx: nil transport")
	}
	return &Daemon{tn: tn, host: host,
		staging:  make(map[string]*Staged),
		partials: make(map[string]*partial),
		inflight: make(map[string]float64),
		conns:    make(map[*transport.Conn]struct{}),
	}
}

// Crash models the daemon process dying: the listener unbinds and every
// active connection drops, but the staging area and partials — the
// DTN's disk — survive for the restarted daemon. Call Start again to
// model the restart.
func (d *Daemon) Crash() {
	d.epoch++
	if d.l != nil {
		d.l.Close()
		d.l = nil
	}
	for c := range d.conns {
		c.Close()
	}
	d.conns = make(map[*transport.Conn]struct{})
	// What a chunk write in progress leaves behind depends on the write
	// path. Two-phase (default): the temp bytes vanish, the partial is
	// exactly its last committed offset. Legacy in-place (TornWrites):
	// roughly half the chunk hit the disk before the process died, the
	// length check can't tell, and only the chunk's rot mark records
	// that the tail is garbage.
	for name, n := range d.inflight {
		if pt, ok := d.partials[name]; ok && d.TornWrites && n > 0 {
			torn := n / 2
			idx := int(pt.received / ManifestChunk)
			pt.received += torn
			d.markRot(name, idx)
			continue
		}
		// Two-phase path: the chunk's temp bytes never promoted, but
		// they are still sitting on the disk as an orphaned *.tmp file
		// until the restarted daemon's sweep (or an eviction) reclaims
		// them — the atomic-rename leak the restart sweep exists for.
		d.noteOrphan(name, n)
	}
	d.inflight = make(map[string]float64)
	// Reservations are process memory, not disk: they die with the
	// process. Handler goroutines that outlive the crash release with
	// an epoch guard, so this cannot double-free.
	d.reserved = nil
	d.pins = nil
}

// PartialOffset returns the confirmed bytes of an in-progress chunked
// push (zero when none) — exposed for tests and diagnostics. The
// partial is scrubbed against its chunk sums first, so torn or rotted
// tails are never reported as confirmed.
func (d *Daemon) PartialOffset(name string) float64 {
	if _, ok := d.partials[name]; ok {
		return d.scrubPartial(name)
	}
	return 0
}

// Staged returns a staged file by name.
func (d *Daemon) Staged(name string) (*Staged, bool) {
	s, ok := d.staging[name]
	return s, ok
}

// Stage places a file into the staging area directly — the relay agent
// uses it to land provider downloads next to rsync-pushed uploads. On
// a bounded disk it is admitted like any other write; a refused Stage
// panics, so capacity-aware callers should use StageChecked.
func (d *Daemon) Stage(st *Staged) {
	if err := d.StageChecked(st); err != nil {
		panic("rsyncx: " + err.Error())
	}
}

// StageChecked is Stage with the disk-full case surfaced as a typed
// ErrNoSpace instead of a panic.
func (d *Daemon) StageChecked(st *Staged) error {
	if st == nil || st.Name == "" {
		panic("rsyncx: staging nil or unnamed file")
	}
	prev := 0.0
	if base, ok := d.staging[st.Name]; ok {
		prev = base.Size
	}
	if err := d.admit(st.Name, st.Size-prev); err != nil {
		return err
	}
	d.unreserve(st.Name, st.Size-prev)
	d.staging[st.Name] = st
	d.touch(st.Name)
	return nil
}

// Remove deletes a staged file, reporting whether it existed. The paper
// deletes staged files before each benchmarked run.
func (d *Daemon) Remove(name string) bool {
	if _, ok := d.staging[name]; !ok {
		return false
	}
	delete(d.staging, name)
	return true
}

// Start binds the daemon listener and serves until the listener closes.
// A restarted daemon first sweeps any *.tmp files the dead process
// orphaned between a temp write and its atomic promote.
func (d *Daemon) Start() *transport.Listener {
	d.sweepOrphans()
	l := d.tn.MustListen(d.host, Port)
	d.l = l
	r := d.tn.Runner()
	r.Go("rsyncd:"+d.host, func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			d.conns[c] = struct{}{}
			r.Go("rsyncd-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				defer delete(d.conns, c)
				d.serve(hp, c)
			})
		}
	})
	return l
}

// Wire message types. Sizes are charged explicitly per message.

type pushReq struct {
	Name    string
	Size    float64
	HasData bool
}

type sigResp struct {
	Sig *Signature // nil when no basis exists
}

type deltaMsg struct {
	Delta *Delta // nil in sized-only mode
	MD5   string
}

type deleteReq struct {
	Name string
}

type statReq struct {
	Name string
}

type statResp struct {
	Staged  bool    // a complete copy is staged
	Size    float64 // size of the staged copy
	MD5     string
	Partial float64 // confirmed bytes of an in-progress chunked push
}

// chunkedPushReq opens a resumable sized push: the payload follows as a
// pushChunk stream, and Offset picks up where a previous push died.
type chunkedPushReq struct {
	Name   string
	Size   float64
	Offset float64 // must match the daemon's partial offset
	MD5    string
}

type pushChunk struct {
	Bytes float64
	Last  bool
}

type fetchReq struct {
	Name string
}

type fetchResp struct {
	OK   bool
	Err  string
	Size float64
	MD5  string
	Data []byte
}

type ack struct {
	OK  bool
	Err string
	MD5 string
}

const ctrlBytes = 96 // rough wire size of control messages

func (d *Daemon) serve(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		switch m := msg.Payload.(type) {
		case pushReq:
			d.handlePush(p, c, m)
		case chunkedPushReq:
			d.handleChunkedPush(p, c, m)
		case statReq:
			resp := statResp{Partial: d.PartialOffset(m.Name)}
			if st, ok := d.staging[m.Name]; ok {
				resp.Staged, resp.Size, resp.MD5 = true, st.Size, st.MD5
			}
			_ = c.Send(p, resp, ctrlBytes)
		case manifestReq:
			sums, ok := d.manifest(m.Name)
			if !ok {
				_ = c.Send(p, manifestResp{OK: false, Err: "not staged: " + m.Name}, ctrlBytes)
				continue
			}
			st := d.staging[m.Name]
			_ = c.Send(p, manifestResp{OK: true, Size: st.Size, MD5: st.MD5, Sums: sums},
				float64(ctrlBytes+33*len(sums)))
		case repairChunkReq:
			if err := d.repairChunk(p, m.Name, m.Index); err != nil {
				_ = c.Send(p, ack{OK: false, Err: err.Error()}, ctrlBytes)
				continue
			}
			_ = c.Send(p, ack{OK: true}, ctrlBytes)
		case deleteReq:
			ok := d.Remove(m.Name)
			_ = c.Send(p, ack{OK: ok}, ctrlBytes)
		case fetchReq:
			st, ok := d.staging[m.Name]
			if !ok {
				_ = c.Send(p, fetchResp{OK: false, Err: "not staged: " + m.Name}, ctrlBytes)
				continue
			}
			resp := fetchResp{OK: true, Size: st.Size, MD5: st.MD5, Data: st.Data}
			_ = c.Send(p, resp, st.Size+ctrlBytes)
		default:
			_ = c.Send(p, ack{OK: false, Err: "protocol error"}, ctrlBytes)
			return
		}
	}
}

func (d *Daemon) handlePush(p *simproc.Proc, c *transport.Conn, req pushReq) {
	// 1. Answer with the signature of whatever basis we hold.
	var sig *Signature
	if base, ok := d.staging[req.Name]; ok && base.Data != nil {
		sig = Sign(base.Data, d.BlockSize)
	}
	resp := sigResp{Sig: sig}
	sigBytes := float64(ctrlBytes)
	if sig != nil {
		sigBytes += sig.WireSize()
	}
	if err := c.Send(p, resp, sigBytes); err != nil {
		return
	}

	// 2. Receive the delta (or sized payload) and stage the result.
	msg, err := c.Recv(p)
	if err != nil {
		return
	}
	dm, ok := msg.Payload.(deltaMsg)
	if !ok {
		_ = c.Send(p, ack{OK: false, Err: "expected delta"}, ctrlBytes)
		return
	}
	// Admission: the push replaces any staged copy of the same name,
	// so only the growth must fit. The reservation covers the write
	// and is consumed when the staged entry lands.
	prev := 0.0
	if base, ok := d.staging[req.Name]; ok {
		prev = base.Size
	}
	if err := d.admit(req.Name, req.Size-prev); err != nil {
		_ = c.Send(p, ack{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	epoch := d.epoch
	defer func() {
		if d.epoch == epoch {
			d.unreserve(req.Name, req.Size-prev)
		}
	}()
	if d.DiskBps > 0 && req.Size > 0 {
		p.Sleep(req.Size / d.DiskBps)
	}
	st := &Staged{Name: req.Name, Size: req.Size, MD5: dm.MD5}
	if req.HasData {
		if dm.Delta == nil {
			_ = c.Send(p, ack{OK: false, Err: "missing delta"}, ctrlBytes)
			return
		}
		var basis []byte
		if base, ok := d.staging[req.Name]; ok {
			basis = base.Data
		}
		data, err := Apply(basis, dm.Delta)
		if err != nil {
			_ = c.Send(p, ack{OK: false, Err: err.Error()}, ctrlBytes)
			return
		}
		if dm.MD5 != "" && Checksum(data) != dm.MD5 {
			_ = c.Send(p, ack{OK: false, Err: "checksum mismatch"}, ctrlBytes)
			return
		}
		st.Data = data
		st.Size = float64(len(data))
		st.MD5 = Checksum(data)
	}
	d.staging[req.Name] = st
	d.touch(req.Name)
	d.Pushes++
	_ = c.Send(p, ack{OK: true, MD5: st.MD5}, ctrlBytes)
}

// handleChunkedPush receives a resumable sized push. Confirmed chunks
// accumulate in the partials map (the DTN's disk); if the connection
// dies mid-stream the partial stays for the next resume, and the final
// chunk promotes it to a fully staged file.
func (d *Daemon) handleChunkedPush(p *simproc.Proc, c *transport.Conn, req chunkedPushReq) {
	pt := d.partials[req.Name]
	cur := 0.0
	if pt != nil && pt.size == req.Size {
		cur = d.scrubPartial(req.Name)
	}
	if req.Offset != cur {
		_ = c.Send(p, ack{OK: false, Err: fmt.Sprintf("bad resume offset %v, have %v", req.Offset, cur)}, ctrlBytes)
		return
	}
	// Admission: reserve headroom for the bytes still to come before
	// accepting the stream, so two concurrent pushes cannot both be
	// admitted into the same free space. The reservation is consumed
	// chunk by chunk as bytes commit; whatever remains when the
	// handler exits (connection death, short push) is released.
	if err := d.admit(req.Name, req.Size-cur); err != nil {
		_ = c.Send(p, ack{OK: false, Err: err.Error()}, ctrlBytes)
		return
	}
	if pt == nil || pt.size != req.Size {
		pt = &partial{size: req.Size, md5: req.MD5}
		d.partials[req.Name] = pt
		d.touch(req.Name)
	}
	epoch := d.epoch
	// Pin for the handler's lifetime: a partial with an active push
	// session is never evicted out from under its own stream.
	d.Pin(req.Name)
	defer func() {
		if d.epoch != epoch {
			return // crash dropped the pin and reservation tables
		}
		d.Unpin(req.Name)
		d.unreserve(req.Name, req.Size) // drop any unconsumed remainder
	}()
	// Go-ahead: the offset was accepted, stream away.
	if err := c.Send(p, ack{OK: true}, ctrlBytes); err != nil {
		return
	}
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return // connection died; the partial stays for resume
		}
		ch, ok := msg.Payload.(pushChunk)
		if !ok {
			_ = c.Send(p, ack{OK: false, Err: "expected chunk"}, ctrlBytes)
			return
		}
		// Two-phase chunk commit: the bytes land in a temp area first
		// (inflight), and only a completed write advances the partial.
		// A Crash mid-write discards the temp bytes — unless TornWrites
		// re-enables the legacy in-place path, where Crash leaves half
		// the chunk behind with only a rot mark to show for it.
		d.inflight[req.Name] = ch.Bytes
		if d.DiskBps > 0 && ch.Bytes > 0 {
			// A degraded disk commits the chunk slowly; the client's ack
			// (and the next chunk's processing) waits on the write.
			p.Sleep(ch.Bytes / d.DiskBps)
		}
		if d.epoch != epoch {
			return // the daemon process died under us; commit nothing
		}
		delete(d.inflight, req.Name)
		pt.received += ch.Bytes
		d.consumeReservation(req.Name, ch.Bytes)
		d.touch(req.Name)
		if !ch.Last {
			// Per-chunk ack: real backpressure. The client sends the next
			// chunk only after this one is committed to disk, so a dying
			// disk's slowness is visible (and escapable) client-side
			// instead of hiding behind a deep untracked inbox.
			if err := c.Send(p, ack{OK: true}, ctrlBytes); err != nil {
				return
			}
			continue
		}
		if math.Abs(pt.received-req.Size) > 1e-6 {
			_ = c.Send(p, ack{OK: false, Err: fmt.Sprintf("short push: %v of %v", pt.received, req.Size)}, ctrlBytes)
			return
		}
		delete(d.partials, req.Name)
		d.staging[req.Name] = &Staged{Name: req.Name, Size: req.Size, MD5: req.MD5}
		d.touch(req.Name)
		d.Pushes++
		_ = c.Send(p, ack{OK: true, MD5: req.MD5}, ctrlBytes)
		return
	}
}

// Client pushes files from a host to a daemon.
type Client struct {
	tn   *transport.Net
	from string
	dtn  string
	// BlockSize for delta computation; DefaultBlockSize when zero.
	BlockSize int
	// Progress, when non-nil, receives the cumulative payload bytes the
	// daemon has acked during a chunked push — the live feed a stall
	// watchdog keys on. Advisory only; wire accounting is the return
	// value of PushSizedResumable.
	Progress func(sent float64)
	// Abort, when non-nil, is polled between chunks of a chunked push; a
	// true return abandons the push with ErrAborted. The daemon's
	// confirmed partial survives for the next resume.
	Abort func() bool
}

// ErrAborted reports a chunked push abandoned because the client's
// Abort hook fired — a cooperative stall abort, not a failure of the
// daemon or the path.
var ErrAborted = errors.New("rsyncx: push aborted by caller")

// NewClient returns an rsync client from `from` to the daemon at `dtn`.
func NewClient(tn *transport.Net, from, dtn string) *Client {
	if tn == nil {
		panic("rsyncx: nil transport")
	}
	return &Client{tn: tn, from: from, dtn: dtn}
}

func (cl *Client) dial(p *simproc.Proc) (*transport.Conn, error) {
	return cl.tn.Dial(p, cl.from, cl.dtn, Port, transport.DialOpts{})
}

// Push transfers data under name using the full rsync protocol: fetch
// the basis signature, compute and ship the delta, verify the ack.
func (cl *Client) Push(p *simproc.Proc, name string, data []byte) error {
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, pushReq{Name: name, Size: float64(len(data)), HasData: true}, ctrlBytes); err != nil {
		return err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	sr, ok := msg.Payload.(sigResp)
	if !ok {
		return fmt.Errorf("rsyncx: expected signature, got %T", msg.Payload)
	}
	sig := sr.Sig
	if sig == nil {
		sig = Sign(nil, cl.BlockSize)
	}
	delta := ComputeDelta(sig, data)
	dm := deltaMsg{Delta: delta, MD5: Checksum(data)}
	if err := c.Send(p, dm, delta.WireSize()+ctrlBytes); err != nil {
		return err
	}
	return recvAck(p, c)
}

// PushSized transfers a file of the given size without materializing its
// bytes: the paper's staged files are random (incompressible, no basis),
// so the wire cost is simply the size plus protocol overhead. md5
// optionally carries an end-to-end digest for the relay to forward.
func (cl *Client) PushSized(p *simproc.Proc, name string, size float64, md5 string) error {
	if size < 0 {
		return fmt.Errorf("rsyncx: negative size")
	}
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, pushReq{Name: name, Size: size, HasData: false}, ctrlBytes); err != nil {
		return err
	}
	if _, err := c.Recv(p); err != nil { // signature (always empty here)
		return err
	}
	if err := c.Send(p, deltaMsg{MD5: md5}, size+ctrlBytes); err != nil {
		return err
	}
	return recvAck(p, c)
}

// DefaultPushChunk is the chunk size of resumable sized pushes: the
// granularity at which progress is checkpointed on the daemon's disk.
const DefaultPushChunk = 8 << 20

// StatInfo reports the daemon-side state of a name: any fully staged
// copy, plus the confirmed offset of an in-progress chunked push.
type StatInfo struct {
	Staged  bool
	Size    float64
	MD5     string
	Partial float64
}

// Stat queries the daemon for staged/partial state of name — the resume
// handshake: the daemon's disk is ground truth for how many bytes an
// interrupted push actually landed.
func (cl *Client) Stat(p *simproc.Proc, name string) (StatInfo, error) {
	c, err := cl.dial(p)
	if err != nil {
		return StatInfo{}, err
	}
	defer c.Close()
	if err := c.Send(p, statReq{Name: name}, ctrlBytes); err != nil {
		return StatInfo{}, err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return StatInfo{}, err
	}
	sr, ok := msg.Payload.(statResp)
	if !ok {
		return StatInfo{}, fmt.Errorf("rsyncx: expected stat response, got %T", msg.Payload)
	}
	return StatInfo{Staged: sr.Staged, Size: sr.Size, MD5: sr.MD5, Partial: sr.Partial}, nil
}

// PushSizedResumable transfers size bytes under name in chunks of
// chunkBytes (DefaultPushChunk if <= 0), starting at offset — which
// must be the daemon's confirmed partial offset, normally learned from
// Stat. It returns the payload bytes put on the wire by this call, so
// callers can account rewritten vs. resumed bytes; on error, re-Stat to
// learn where the daemon's partial actually stands.
func (cl *Client) PushSizedResumable(p *simproc.Proc, name string, size, offset, chunkBytes float64, md5 string) (sent float64, err error) {
	if size < 0 || offset < 0 || offset > size {
		return 0, fmt.Errorf("rsyncx: bad size/offset %v/%v", size, offset)
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultPushChunk
	}
	c, err := cl.dial(p)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Send(p, chunkedPushReq{Name: name, Size: size, Offset: offset, MD5: md5}, ctrlBytes); err != nil {
		return 0, err
	}
	if err := recvAck(p, c); err != nil { // go-ahead: offset accepted
		return 0, err
	}
	pos := offset
	for {
		if cl.Abort != nil && cl.Abort() {
			return sent, ErrAborted
		}
		n := chunkBytes
		last := false
		if pos+n >= size {
			n = size - pos
			last = true
		}
		if err := c.Send(p, pushChunk{Bytes: n, Last: last}, n+ctrlBytes); err != nil {
			return sent, err
		}
		// Every chunk is acked after the daemon commits it to disk —
		// backpressure, and the safe point the Abort hook is checked at.
		if err := recvAck(p, c); err != nil {
			return sent, err
		}
		sent += n
		pos += n
		if cl.Progress != nil {
			cl.Progress(sent)
		}
		if last {
			return sent, nil
		}
	}
}

// Fetch pulls a staged file from the daemon (the reverse direction,
// used by detoured downloads: provider → DTN → client). It returns the
// staged metadata after the bytes have crossed the wire.
func (cl *Client) Fetch(p *simproc.Proc, name string) (*Staged, error) {
	c, err := cl.dial(p)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Send(p, fetchReq{Name: name}, ctrlBytes); err != nil {
		return nil, err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return nil, err
	}
	fr, ok := msg.Payload.(fetchResp)
	if !ok {
		return nil, fmt.Errorf("rsyncx: expected fetch response, got %T", msg.Payload)
	}
	if !fr.OK {
		return nil, fmt.Errorf("rsyncx: fetch: %s", fr.Err)
	}
	return &Staged{Name: name, Size: fr.Size, MD5: fr.MD5, Data: fr.Data}, nil
}

// Delete removes a staged file on the daemon.
func (cl *Client) Delete(p *simproc.Proc, name string) error {
	c, err := cl.dial(p)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(p, deleteReq{Name: name}, ctrlBytes); err != nil {
		return err
	}
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	if a, ok := msg.Payload.(ack); ok && !a.OK {
		return fmt.Errorf("rsyncx: delete: no such staged file %q", name)
	}
	return nil
}

func recvAck(p *simproc.Proc, c *transport.Conn) error {
	msg, err := c.Recv(p)
	if err != nil {
		return err
	}
	a, ok := msg.Payload.(ack)
	if !ok {
		return fmt.Errorf("rsyncx: expected ack, got %T", msg.Payload)
	}
	if !a.OK {
		return fmt.Errorf("rsyncx: push rejected: %s", a.Err)
	}
	return nil
}
