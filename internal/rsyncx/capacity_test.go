package rsyncx

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/simproc"
)

// checkDiskInvariants asserts the staging-disk accounting identities
// that every capacity operation must preserve: the component sums
// match, and a bounded disk never holds (or promises) more than its
// capacity.
func checkDiskInvariants(t *testing.T, d *Daemon) {
	t.Helper()
	st := d.Stats()
	if got := st.StagedBytes + st.PartialBytes + st.OrphanBytes; got != st.Used {
		t.Fatalf("used %v != staged %v + partial %v + orphan %v",
			st.Used, st.StagedBytes, st.PartialBytes, st.OrphanBytes)
	}
	if d.Capacity > 0 && st.Used+st.Reserved > d.Capacity+1e-6 {
		t.Fatalf("used %v + reserved %v exceeds capacity %v",
			st.Used, st.Reserved, d.Capacity)
	}
	if st.Headroom < 0 {
		t.Fatalf("negative headroom %v", st.Headroom)
	}
}

// TestCapacityAdmission: a bounded disk with eviction off refuses
// writes that do not fit, with the typed ErrNoSpace, and admits them
// once room exists. Unbounded disks admit everything.
func TestCapacityAdmission(t *testing.T) {
	rg := newRig(t)
	rg.d.Capacity = 100e3
	if err := rg.d.StageChecked(&Staged{Name: "a.bin", Size: 60e3}); err != nil {
		t.Fatalf("first stage: %v", err)
	}
	err := rg.d.StageChecked(&Staged{Name: "b.bin", Size: 60e3})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overfull stage err = %v, want ErrNoSpace", err)
	}
	if !strings.Contains(err.Error(), "no space") {
		t.Fatalf("error %q lacks the wire-keyed %q substring", err, "no space")
	}
	if _, ok := rg.d.Staged("b.bin"); ok {
		t.Fatal("refused file landed anyway")
	}
	rg.d.Remove("a.bin")
	if err := rg.d.StageChecked(&Staged{Name: "b.bin", Size: 60e3}); err != nil {
		t.Fatalf("stage after remove: %v", err)
	}
	checkDiskInvariants(t, rg.d)
}

// TestCapacityPushRefusedOnWire: a client push that cannot fit is
// refused before payload bytes cross the wire, and the flattened ack
// error keeps the "no space" substring remote classifiers key on.
func TestCapacityPushRefusedOnWire(t *testing.T) {
	rg := newRig(t)
	rg.d.Capacity = 50e3
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		_, err := cl.PushSizedResumable(p, "big.bin", 80e3, 0, 16e3, "digest")
		if err == nil || !strings.Contains(err.Error(), "no space") {
			t.Errorf("push err = %v, want a %q rejection", err, "no space")
		}
	})
	if got := rg.d.Used(); got != 0 {
		t.Fatalf("refused push left %v bytes on disk", got)
	}
	checkDiskInvariants(t, rg.d)
}

// TestEvictionLRU: with eviction on, the stalest unpinned name goes
// first (touch order, not insertion order), and the eviction counters
// account the reclaimed bytes.
func TestEvictionLRU(t *testing.T) {
	rg := newRig(t)
	rg.d.Capacity = 100e3
	rg.d.EvictStale = true
	if err := rg.d.StageChecked(&Staged{Name: "old.bin", Size: 40e3}); err != nil {
		t.Fatal(err)
	}
	if err := rg.d.StageChecked(&Staged{Name: "mid.bin", Size: 40e3}); err != nil {
		t.Fatal(err)
	}
	// Re-touch old.bin: mid.bin becomes the stalest.
	if err := rg.d.StageChecked(&Staged{Name: "old.bin", Size: 40e3}); err != nil {
		t.Fatal(err)
	}
	if err := rg.d.StageChecked(&Staged{Name: "new.bin", Size: 40e3}); err != nil {
		t.Fatalf("eviction did not make room: %v", err)
	}
	if _, ok := rg.d.Staged("mid.bin"); ok {
		t.Fatal("stalest file survived eviction")
	}
	if _, ok := rg.d.Staged("old.bin"); !ok {
		t.Fatal("freshly touched file was evicted")
	}
	st := rg.d.Stats()
	if st.Evictions != 1 || st.EvictedBytes != 40e3 {
		t.Fatalf("evictions = %d (%v B), want 1 (40e3 B)", st.Evictions, st.EvictedBytes)
	}
	checkDiskInvariants(t, rg.d)
}

// TestPinnedNeverEvicted: a pinned name survives every eviction pass —
// the write that cannot fit without touching it is refused instead.
func TestPinnedNeverEvicted(t *testing.T) {
	rg := newRig(t)
	rg.d.Capacity = 100e3
	rg.d.EvictStale = true
	if err := rg.d.StageChecked(&Staged{Name: "live.bin", Size: 60e3}); err != nil {
		t.Fatal(err)
	}
	rg.d.Pin("live.bin")
	err := rg.d.StageChecked(&Staged{Name: "next.bin", Size: 60e3})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("stage over a pinned file = %v, want ErrNoSpace", err)
	}
	if _, ok := rg.d.Staged("live.bin"); !ok {
		t.Fatal("pinned file evicted")
	}
	rg.d.Unpin("live.bin")
	if err := rg.d.StageChecked(&Staged{Name: "next.bin", Size: 60e3}); err != nil {
		t.Fatalf("stage after unpin: %v", err)
	}
	if _, ok := rg.d.Staged("live.bin"); ok {
		t.Fatal("unpinned stale file survived a full-disk stage")
	}
	checkDiskInvariants(t, rg.d)
}

// TestOrphanSweepOnRestart: temp bytes a dead process leaked between a
// chunk write and its atomic promote occupy the disk as orphans until
// the restarted daemon's sweep reclaims them.
func TestOrphanSweepOnRestart(t *testing.T) {
	rg := newRig(t)
	rg.d.Capacity = 100e3
	rg.d.inflight["dead.bin"] = 30e3 // a chunk mid-write when the process dies
	rg.d.Crash()
	st := rg.d.Stats()
	if st.Orphans != 1 || st.OrphanBytes != 30e3 {
		t.Fatalf("after crash: %d orphans (%v B), want 1 (30e3 B)", st.Orphans, st.OrphanBytes)
	}
	if rg.d.Used() != 30e3 {
		t.Fatalf("orphan bytes not counted as used: %v", rg.d.Used())
	}
	checkDiskInvariants(t, rg.d)
	rg.d.Start()
	st = rg.d.Stats()
	if st.Orphans != 0 || st.OrphansSwept != 1 {
		t.Fatalf("after restart: %d orphans, %d swept, want 0 and 1", st.Orphans, st.OrphansSwept)
	}
	if rg.d.Used() != 0 {
		t.Fatalf("sweep left %v bytes", rg.d.Used())
	}
	checkDiskInvariants(t, rg.d)
}

// TestEvictCrashResumeConservation is the staged-bytes conservation
// property across the full storm: an interrupted push leaves a
// partial, the partial survives a daemon crash/restart, an eviction
// pass reclaims it for a bigger write, and the resuming client — whose
// ground truth is the daemon's Stat, not its own memory — re-sends
// exactly the evicted bytes. At no point does the disk hold more than
// its capacity, and an evicted partial never resurrects.
func TestEvictCrashResumeConservation(t *testing.T) {
	const mc = float64(ManifestChunk)
	rg := newRig(t)
	rg.d.Capacity = 8 * mc
	rg.d.EvictStale = true

	rg.run(t, func(p *simproc.Proc, cl *Client) {
		// Land 2 of A's 4 chunks, then stop — an interrupted transfer.
		aborted := 0
		cl.Abort = func() bool { aborted++; return aborted > 2 }
		if _, err := cl.PushSizedResumable(p, "a.bin", 4*mc, 0, mc, "da"); err != ErrAborted {
			t.Errorf("expected ErrAborted, got %v", err)
			return
		}
		cl.Abort = nil
		if got := rg.d.PartialOffset("a.bin"); got != 2*mc {
			t.Errorf("partial = %v, want %v", got, 2*mc)
			return
		}
		checkDiskInvariants(t, rg.d)

		// The daemon dies and restarts: the partial is disk state and
		// survives; the handler's pins and reservations do not.
		rg.d.Crash()
		rg.d.Start()
		if got := rg.d.PartialOffset("a.bin"); got != 2*mc {
			t.Errorf("partial after crash/restart = %v, want %v", got, 2*mc)
			return
		}
		checkDiskInvariants(t, rg.d)

		// B needs 7 of the 8 chunks of disk: A's stale partial (2 chunks)
		// is evicted to make room.
		if sent, err := cl.PushSizedResumable(p, "b.bin", 7*mc, 0, mc, "db"); err != nil || sent != 7*mc {
			t.Errorf("push b: sent=%v err=%v", sent, err)
			return
		}
		if _, ok := rg.d.Staged("b.bin"); !ok {
			t.Error("b.bin not staged")
			return
		}
		if got := rg.d.Stats().Evictions; got == 0 {
			t.Error("no eviction recorded")
			return
		}
		checkDiskInvariants(t, rg.d)

		// Ground truth: the evicted partial is gone and stays gone.
		st, err := cl.Stat(p, "a.bin")
		if err != nil {
			t.Errorf("stat: %v", err)
			return
		}
		if st.Staged || st.Partial != 0 {
			t.Errorf("evicted partial resurrected: %+v", st)
			return
		}

		// Resume from the daemon's offset, not the client's memory of
		// 2*mc: the sender re-sends exactly the evicted bytes (all of A),
		// evicting stale B in turn.
		sent, err := cl.PushSizedResumable(p, "a.bin", 4*mc, st.Partial, mc, "da")
		if err != nil || sent != 4*mc {
			t.Errorf("resume push: sent=%v err=%v (want full %v resend)", sent, err, 4*mc)
			return
		}
		got, ok := rg.d.Staged("a.bin")
		if !ok || got.Size != 4*mc || got.MD5 != "da" {
			t.Errorf("a.bin after resume = %+v %v", got, ok)
			return
		}
		checkDiskInvariants(t, rg.d)
	})
}

// TestCapacityChurnInvariants drives a seeded random mix of sized
// pushes, aborted pushes, crash/restart cycles, and direct stages
// against a small bounded disk, asserting the accounting identities
// after every operation — the generative half of the conservation
// property.
func TestCapacityChurnInvariants(t *testing.T) {
	const mc = float64(ManifestChunk)
	rg := newRig(t)
	rg.d.Capacity = 10 * mc
	rg.d.EvictStale = true
	names := []string{"w.bin", "x.bin", "y.bin", "z.bin"}
	rng := rand.New(rand.NewSource(7))

	rg.run(t, func(p *simproc.Proc, cl *Client) {
		for i := 0; i < 30; i++ {
			name := names[rng.Intn(len(names))]
			size := float64(1+rng.Intn(5)) * mc
			switch rng.Intn(4) {
			case 0: // complete push, resuming from the daemon's offset
				st, err := cl.Stat(p, name)
				if err != nil {
					t.Errorf("op %d stat: %v", i, err)
					return
				}
				off := st.Partial
				if off > size {
					off = 0
				}
				if _, err := cl.PushSizedResumable(p, name, size, off, mc, "d"); err != nil && !strings.Contains(err.Error(), "no space") {
					t.Errorf("op %d push: %v", i, err)
					return
				}
			case 1: // interrupted push: leaves a partial behind
				aborted := 0
				cl.Abort = func() bool { aborted++; return aborted > 1 }
				if _, err := cl.PushSizedResumable(p, name, size, 0, mc, "d"); err != ErrAborted && err != nil && !strings.Contains(err.Error(), "no space") {
					t.Errorf("op %d abort push: %v", i, err)
					cl.Abort = nil
					return
				}
				cl.Abort = nil
			case 2: // direct stage (the relay agent's write path)
				if err := rg.d.StageChecked(&Staged{Name: name, Size: size, MD5: "d"}); err != nil && !errors.Is(err, ErrNoSpace) {
					t.Errorf("op %d stage: %v", i, err)
					return
				}
			case 3: // process death and restart
				rg.d.Crash()
				rg.d.Start()
			}
			checkDiskInvariants(t, rg.d)
		}
	})
}
