// Churn replay: the reconvergence-storm harness behind `make churn`,
// the examples/churn program, detourd's -churn mode, and the churn
// acceptance tests. One RunChurn call builds a world with dynamic
// (staged-convergence) routing, arms the faults.ChurnSchedule storm,
// and drives a fixed fleet of transfers through the scheduler — either
// with the full churn stack (checkpointed resume, make-before-break
// rerouting with parking, push-based route invalidation off the bus) or
// as the ablated control (one attempt, no recovery, TTL-only caching).
//
// Everything is deterministic per seed: Workers is 1 (sequential ⇒
// deterministic — the repo's established idiom), the convergence delays
// come from the world's seeded RNG, and the report renderer only
// iterates sorted data. Same seed, same binary ⇒ byte-identical output,
// which `make check` verifies.
package sched

import (
	"fmt"
	"io"
	"sort"

	"detournet/internal/bgppol"
	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
)

// ChurnOptions configures one storm replay.
type ChurnOptions struct {
	// Seed drives the world, the fault schedule, and the convergence
	// delays.
	Seed int64
	// Jobs is the fleet size (default 36); Size the bytes per transfer
	// (default 60 MB — long enough that fault windows land mid-flight).
	Jobs int
	Size float64
	// Stack arms the full churn stack. False runs the ablated control.
	Stack bool
}

// ChurnOutcome is one replay's complete, deterministic result set.
type ChurnOutcome struct {
	// Results in completion order (sequential worker ⇒ submission order
	// of terminal outcomes is stable).
	Results []Result
	Stats   Stats
	// Events is the routing-plane event log (withdraws/announces with
	// their convergence horizons).
	Events []bgppol.Event
	// Transitions is the fault injector's transition log.
	Transitions []string
	// VirtualSeconds is the total simulated time the replay spanned.
	VirtualSeconds float64
}

// Affected lists the jobs this run shows the storm touched: a failure,
// a retry, a reroute, parking, or re-sent bytes.
func (o ChurnOutcome) Affected() map[string]bool {
	out := make(map[string]bool)
	for _, r := range o.Results {
		if r.Err != nil || r.Attempts > 1 || r.Reroutes > 0 || r.Parked > 0 || r.Rewritten > 0 {
			out[r.Job.Name] = true
		}
	}
	return out
}

// RunChurn replays the storm once. See the package comment on ChurnOptions.
func RunChurn(o ChurnOptions) ChurnOutcome {
	if o.Jobs <= 0 {
		o.Jobs = 36
	}
	if o.Size <= 0 {
		o.Size = 60e6
	}
	w := scenario.Build(o.Seed, scenario.WithDynamicRouting())
	inj := faults.NewInjector(w, o.Seed, faults.ChurnSchedule()...)
	exec := NewSimExecutor(w)
	defer exec.Close()

	var results []Result
	cfg := Config{
		Workers:  1, // sequential ⇒ deterministic
		Executor: exec, Planner: exec,
		Now:      exec.VirtualNow,
		Sleep:    exec.SleepVirtual,
		OnResult: func(r Result) { results = append(results, r) },
	}
	if o.Stack {
		cfg.MaxAttempts = 5
		cfg.Reroute = true
		cfg.ParkBudget = 120
	} else {
		cfg.MaxAttempts = 1
		cfg.DisableRecovery = true
	}
	s := New(cfg)
	if o.Stack {
		// Push-based invalidation: routing events reach the route cache
		// the instant they happen instead of waiting out TTLs.
		w.RouteBus.Subscribe(func(ev bgppol.Event) {
			s.RouteEvent(RouteEvent{
				Withdraw: ev.Kind == bgppol.EventWithdraw,
				DomainA:  ev.DomainA, DomainB: ev.DomainB,
				FromNode: ev.FromNode, ToNode: ev.ToNode,
				At: ev.At, ConvergedBy: ev.ConvergedBy,
			})
		})
	}
	s.Start()
	// A fixed two-site fleet on the storm's target provider: UBC rides
	// the pinned PacificWave path that flips away and back, UAlberta
	// sits behind the Cybera~CANARIE session that gets cut entirely.
	clients := []string{scenario.UBC, scenario.UAlberta}
	for i := 0; i < o.Jobs; i++ {
		err := s.Submit(Job{
			Tenant: "churn", Client: clients[i%len(clients)],
			Provider: scenario.GoogleDrive,
			Name:     fmt.Sprintf("churn-%03d.bin", i), Size: o.Size,
		})
		if err != nil {
			panic(err)
		}
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	out := ChurnOutcome{
		Results: results, Stats: st,
		Transitions:    inj.Transitions(),
		VirtualSeconds: exec.VirtualNow(),
	}
	if w.Routing != nil {
		out.Events = w.Routing.Events()
	}
	return out
}

// ChurnVerdict is the acceptance arithmetic over a control/stack pair,
// computed on the union of jobs either run shows the storm touched.
type ChurnVerdict struct {
	// Affected is how many distinct jobs the storm touched across the
	// two runs.
	Affected int
	// ControlFailed of those failed in the control run; StackSurvived
	// and StackFailed split them for the stack run.
	ControlFailed int
	StackSurvived int
	StackFailed   int
	// ResentBytes is the stack run's total re-sent (rewritten) bytes;
	// ResentBudget is one checkpoint chunk per reroute, failover, and
	// retry — the bound make-before-break promises.
	ResentBytes  float64
	ResentBudget float64
}

// ControlFailRate and StackSurvivalRate are fractions of Affected.
func (v ChurnVerdict) ControlFailRate() float64 {
	if v.Affected == 0 {
		return 0
	}
	return float64(v.ControlFailed) / float64(v.Affected)
}

func (v ChurnVerdict) StackSurvivalRate() float64 {
	if v.Affected == 0 {
		return 0
	}
	return float64(v.StackSurvived) / float64(v.Affected)
}

// CompareChurn scores a control run against a stack run of the same
// fleet and seed.
func CompareChurn(control, stack ChurnOutcome) ChurnVerdict {
	aff := control.Affected()
	for name := range stack.Affected() {
		aff[name] = true
	}
	v := ChurnVerdict{Affected: len(aff)}
	for _, r := range control.Results {
		if aff[r.Job.Name] && r.Err != nil {
			v.ControlFailed++
		}
	}
	for _, r := range stack.Results {
		if !aff[r.Job.Name] {
			continue
		}
		if r.Err == nil {
			v.StackSurvived++
		} else {
			v.StackFailed++
		}
	}
	v.ResentBytes = stack.Stats.BytesRewritten
	v.ResentBudget = core.DefaultResumeChunk *
		float64(stack.Stats.Reroutes+stack.Stats.Retries+stack.Stats.Failovers)
	return v
}

// WriteChurnReport renders the deterministic with/without report the
// churn example and detourd's -churn mode print.
func WriteChurnReport(out io.Writer, control, stack ChurnOutcome) {
	line := func(label string, o ChurnOutcome) {
		st := o.Stats
		fmt.Fprintf(out, "%-8s %3d done %3d failed | %d reroutes %d parks %.0fs parked | %d retries %d failovers | %.1f MB resumed %.1f MB re-sent | %.0f virtual s\n",
			label, st.Done, st.Failed, st.Reroutes, st.Parks, st.ParkSeconds,
			st.Retries, st.Failovers, st.BytesResumed/1e6, st.BytesRewritten/1e6,
			o.VirtualSeconds)
	}
	fmt.Fprintf(out, "Churn: %d transfers vs a reconvergence storm (%d routing events, %d fault transitions)\n",
		len(stack.Results), len(stack.Events), len(stack.Transitions))
	line("control", control)
	line("stack", stack)

	v := CompareChurn(control, stack)
	fmt.Fprintf(out, "storm touched %d transfers: control failed %d (%.0f%%), stack survived %d (%.0f%%)\n",
		v.Affected, v.ControlFailed, 100*v.ControlFailRate(),
		v.StackSurvived, 100*v.StackSurvivalRate())
	fmt.Fprintf(out, "re-sent bytes %.1f MB within the make-before-break bound %.1f MB (one %d MB chunk per reroute/retry/failover)\n",
		v.ResentBytes/1e6, v.ResentBudget/1e6, core.DefaultResumeChunk/(1<<20))
	fmt.Fprintf(out, "invalidation bus: %d events -> %d converging holds, %d announce releases, %d re-elections\n",
		stack.Stats.RouteEvents, stack.Stats.RouteConverges, stack.Stats.RouteAnnounces,
		stack.Stats.CacheInvalidations)

	fmt.Fprintln(out, "routing events (first 10):")
	for i, ev := range stack.Events {
		if i == 10 {
			fmt.Fprintf(out, "  ... %d more\n", len(stack.Events)-10)
			break
		}
		fmt.Fprintf(out, "  %s\n", ev)
	}

	perRoute := make([]string, 0, len(stack.Stats.PerRoute))
	for r := range stack.Stats.PerRoute {
		perRoute = append(perRoute, r)
	}
	sort.Strings(perRoute)
	fmt.Fprintln(out, "stack per-route totals:")
	for _, r := range perRoute {
		rs := stack.Stats.PerRoute[r]
		fmt.Fprintf(out, "  %-16s %4d jobs  %8.1f MB  %6.2f MB/s\n",
			r, rs.Jobs, rs.Bytes/1e6, rs.Throughput()/1e6)
	}
}
