package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "Jobs.", "route").With("direct")
	c.Inc()
	c.Add(2)
	c.Add(-5) // counters reject negative deltas
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3", got)
	}
	g := reg.Gauge("depth", "Queue depth.").With()
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5", got)
	}
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestFamilyReuseAndMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.", "route")
	b := reg.Counter("x_total", "X.", "route")
	if a != b {
		t.Fatal("re-registering the same family should return the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	reg.Gauge("x_total", "X.", "route")
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	m := reg.Counter("n_total", "nil").With()
	m.Inc()
	m.Add(3)
	m.Observe(1)
	if m.Value() != 0 {
		t.Fatal("nil metric should read 0")
	}
	if len(reg.Snapshot().Families) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	var rec *FlightRecorder
	rec.Begin("j").Note("k")
	rec.Finish(nil, "j", true)
	rec.Finish(rec.Begin("j"), "j", true)
	if rec.Retained() != nil {
		t.Fatal("nil recorder should retain nothing")
	}
	var samp *Sampler
	samp.Track("x", func() float64 { return 0 })
	samp.Restart()
	samp.StopAll()
	if samp.Snapshot() != nil {
		t.Fatal("nil sampler snapshot should be nil")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() Snapshot {
		reg := NewRegistry()
		// Register in scrambled order with scrambled children.
		reg.Gauge("zeta", "z")
		reg.Counter("alpha_total", "a", "route").With("detour").Inc()
		reg.Counter("alpha_total", "a", "route").With("direct").Add(2)
		reg.Histogram("mid_seconds", "m", HistOpts{Start: 1, Factor: 2, Buckets: 4}).With().Observe(3)
		reg.Gauge("zeta", "z").With().Set(9)
		return reg.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("prometheus dumps differ:\n%s\n---\n%s", a.String(), b.String())
	}
	s := build()
	names := make([]string, len(s.Families))
	for i, f := range s.Families {
		names[i] = f.Name
	}
	want := []string{"alpha_total", "mid_seconds", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("family order = %v, want %v", names, want)
		}
	}
	if s.Families[0].Metrics[0].LabelValues[0] != "detour" ||
		s.Families[0].Metrics[1].LabelValues[0] != "direct" {
		t.Fatalf("children not sorted by label value: %+v", s.Families[0].Metrics)
	}
}

func TestExportFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bytes_total", "Bytes moved.", "route").With("direct").Add(1.25e6)
	h := reg.Histogram("lat_seconds", "Latency.", HistOpts{Start: 0.5, Factor: 2, Buckets: 3}).With()
	h.Observe(0.4)
	h.Observe(3)
	h.Observe(100)
	snap := reg.Snapshot()

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bytes_total{route="direct"} 1.25e+06`,
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 1`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 103.4`,
		`lat_seconds_count 3`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, prom.String())
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"bytes_total"`) {
		t.Fatalf("json dump missing family:\n%s", js.String())
	}

	var csv bytes.Buffer
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bytes_total,counter,direct,value,1.25e+06",
		"lat_seconds,histogram,,le=+Inf,2",
		"lat_seconds,histogram,,count,3",
	} {
		if !strings.Contains(csv.String(), want) {
			t.Fatalf("csv dump missing %q:\n%s", want, csv.String())
		}
	}
}

// TestRegistryHotPathRace hammers one child from many goroutines; run
// under -race this is the registry's data-race guard.
func TestRegistryHotPathRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_total", "r").With()
	g := reg.Gauge("race_gauge", "r").With()
	h := reg.Histogram("race_seconds", "r", HistOpts{}).With()
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%97) / 10)
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %g, want %d", got, workers*per)
	}
	var snap *HistSnapshot
	for _, f := range reg.Snapshot().Families {
		if f.Name == "race_seconds" {
			snap = f.Metrics[0].Hist
		}
	}
	if snap == nil || snap.Count != workers*per {
		t.Fatalf("histogram count = %+v, want %d", snap, workers*per)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "b", HistOpts{}).With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}
