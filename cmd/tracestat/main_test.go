package main

import (
	"bytes"
	"strings"
	"testing"

	"detournet/internal/tracelog"
)

const sampleTrace = `{"t":1.5,"kind":"detour.upload.done","attrs":{"via":"ualberta","provider":"GoogleDrive","bytes":6e7,"total":23.3}}
{"t":2.0,"kind":"agent.relay.upload","attrs":{"name":"f","provider":"GoogleDrive"}}
{"t":9.1,"kind":"detour.upload.done","attrs":{"via":"ualberta","provider":"GoogleDrive","bytes":6e7,"total":24.7}}
{"t":12.0,"kind":"detour.download.done","attrs":{"via":"umich-pl","provider":"Dropbox","bytes":1e7,"total":5.0}}
`

func TestReadEvents(t *testing.T) {
	events, err := readEvents(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != "detour.upload.done" || events[0].At != 1.5 {
		t.Fatalf("event0 = %+v", events[0])
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := readEvents(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	events, err := readEvents(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank lines: %v %v", events, err)
	}
}

func TestPrintKindCounts(t *testing.T) {
	events, _ := readEvents(strings.NewReader(sampleTrace))
	var buf bytes.Buffer
	printKindCounts(&buf, events)
	out := buf.String()
	if !strings.Contains(out, "detour.upload.done") || !strings.Contains(out, "2") {
		t.Fatalf("counts:\n%s", out)
	}
}

func TestPrintTransferStats(t *testing.T) {
	events, _ := readEvents(strings.NewReader(sampleTrace))
	var buf bytes.Buffer
	printTransferStats(&buf, events)
	out := buf.String()
	// Two uploads via ualberta: 120 MB over 48s = 2.50 MB/s.
	if !strings.Contains(out, "ualberta") || !strings.Contains(out, "120.0") || !strings.Contains(out, "2.50") {
		t.Fatalf("stats:\n%s", out)
	}
	if !strings.Contains(out, "umich-pl") || !strings.Contains(out, "Dropbox") {
		t.Fatalf("download row missing:\n%s", out)
	}
}

func TestPrintTransferStatsNoTransfers(t *testing.T) {
	var buf bytes.Buffer
	printTransferStats(&buf, []tracelog.Event{{Kind: "other", At: 1}})
	if buf.Len() != 0 {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
