package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	payloads := [][]byte{[]byte("hello"), {}, []byte(`{"job":"a","size":42}`), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := w.Append(byte(i+1), p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	recs, trunc, err := Replay(dev)
	if err != nil || trunc != 0 {
		t.Fatalf("replay: trunc=%d err=%v", trunc, err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Type != byte(i+1) || !bytes.Equal(r.Data, payloads[i]) {
			t.Fatalf("record %d mismatch: type=%d data=%q", i, r.Type, r.Data)
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	if err := w.Append(1, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	goodLen := dev.Size()
	dev.TornNextAppend(0.4)
	if err := w.Append(2, []byte("torn away, never fully persisted")); err != nil {
		t.Fatal(err)
	}
	if dev.Size() <= goodLen {
		t.Fatal("torn append persisted nothing")
	}
	recs, trunc, err := Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if trunc == 0 {
		t.Fatal("expected torn tail to be truncated")
	}
	if len(recs) != 1 || string(recs[0].Data) != "keep me" {
		t.Fatalf("recovered %v", recs)
	}
	if dev.Size() != goodLen {
		t.Fatalf("device not truncated to valid prefix: %d != %d", dev.Size(), goodLen)
	}
	// The journal must be appendable again after truncation.
	if err := w.Append(3, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	recs, trunc, _ = Replay(dev)
	if trunc != 0 || len(recs) != 2 {
		t.Fatalf("post-recovery replay: trunc=%d recs=%d", trunc, len(recs))
	}
}

func TestBitRotStopsScan(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	w.Append(1, []byte("first"))
	second := dev.Size()
	w.Append(2, []byte("second"))
	w.Append(3, []byte("third"))
	// Corrupt a payload byte of the second record: scan keeps the first,
	// drops the second and everything after (can't trust frame bounds).
	dev.FlipByte(second + HeaderSize + 2)
	recs, valid := Scan(dev.Bytes())
	if len(recs) != 1 || string(recs[0].Data) != "first" {
		t.Fatalf("got %d records", len(recs))
	}
	if valid != second {
		t.Fatalf("valid=%d want %d", valid, second)
	}
}

func TestCompactAtomicity(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	for i := 0; i < 10; i++ {
		w.Append(1, []byte{byte(i)})
	}
	if err := w.Compact([]Rec{{Type: 9, Data: []byte("snapshot")}, {Type: 1, Data: []byte("tail")}}); err != nil {
		t.Fatal(err)
	}
	recs, trunc, _ := Replay(dev)
	if trunc != 0 || len(recs) != 2 || recs[0].Type != 9 {
		t.Fatalf("after compact: trunc=%d recs=%v", trunc, recs)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctl.journal")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(dev)
	w.Append(1, []byte("persisted"))
	w.Append(2, []byte("records"))

	// Simulate a crash: drop the in-memory handle, tear the on-disk tail.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, append(raw, Encode(3, []byte("torn"))[:7]...), 0o644)

	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, trunc, err := Replay(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if trunc != 7 || len(recs) != 2 || string(recs[1].Data) != "records" {
		t.Fatalf("file replay: trunc=%d recs=%d", trunc, len(recs))
	}
	raw, _ = os.ReadFile(path)
	if _, valid := Scan(raw); valid != len(raw) {
		t.Fatal("on-disk journal still has a torn tail after Replay")
	}

	if err := dev2.Swap(Encode(9, []byte("compacted"))); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("swap left its temp file behind")
	}
	dev3, _ := OpenFileDevice(path)
	recs, _, _ = Replay(dev3)
	if len(recs) != 1 || string(recs[0].Data) != "compacted" {
		t.Fatalf("after swap: %v", recs)
	}
}

func TestScanGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{Magic},
		{0x00, 0x01, 0x02},
		bytes.Repeat([]byte{Magic}, 100),
		bytes.Repeat([]byte{0xFF}, 1000),
		Encode(1, nil)[:HeaderSize-1],
	}
	// A length field pointing past the buffer must not be trusted.
	huge := Encode(1, []byte("x"))
	huge[2] = 0xFF
	huge[3] = 0xFF
	huge[4] = 0xFF
	huge[5] = 0x7F
	cases = append(cases, huge)
	for i, c := range cases {
		recs, valid := Scan(c)
		if len(recs) != 0 {
			t.Errorf("case %d: decoded %d records from garbage", i, len(recs))
		}
		if valid < 0 || valid > len(c) {
			t.Errorf("case %d: valid=%d out of range", i, valid)
		}
	}
}
