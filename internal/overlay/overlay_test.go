package overlay

import (
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

// triangle builds three members where a->c direct is slow (1 MB/s) but
// a->b and b->c are fast (8 MB/s) — a TIV triangle like the paper's.
type rig struct {
	eng     *simclock.Engine
	r       *simproc.Runner
	tn      *transport.Net
	g       *topology.Graph
	daemons map[string]*Daemon
}

func triangle(t *testing.T) *rig {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"a", "b", "c", "ra", "rb", "rc"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	// Hosts hang off their own routers; the slow edge is ra--rc.
	g.MustConnect("a", "ra", topology.LinkSpec{CapacityBps: 50e6, DelaySec: 0.0005})
	g.MustConnect("b", "rb", topology.LinkSpec{CapacityBps: 50e6, DelaySec: 0.0005})
	g.MustConnect("c", "rc", topology.LinkSpec{CapacityBps: 50e6, DelaySec: 0.0005})
	g.MustConnect("ra", "rb", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.008})
	g.MustConnect("rb", "rc", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.008})
	g.MustConnect("ra", "rc", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.010})
	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	rg := &rig{eng: eng, r: r, tn: tn, g: g, daemons: map[string]*Daemon{}}
	for _, h := range []string{"a", "b", "c"} {
		d := NewDaemon(tn, h)
		d.Start()
		rg.daemons[h] = d
	}
	return rg
}

func (rg *rig) run(t *testing.T, fn func(p *simproc.Proc)) {
	t.Helper()
	done := false
	rg.r.Go("test", func(p *simproc.Proc) {
		fn(p)
		done = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func TestProbeMeasuresThroughput(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	rg.run(t, func(p *simproc.Proc) {
		rate, err := m.Probe(p, "a", "b")
		if err != nil {
			t.Error(err)
			return
		}
		// 1 MiB over an 8 MB/s path, with handshake: effective well
		// above 1 MB/s and below 8.
		if rate < 1e6 || rate > 8e6 {
			t.Errorf("a->b probe rate = %v", rate)
		}
		rateSlow, err := m.Probe(p, "a", "c")
		if err != nil {
			t.Error(err)
			return
		}
		if rateSlow >= rate {
			t.Errorf("slow edge (%v) measured faster than fast edge (%v)", rateSlow, rate)
		}
		if s, ok := m.Stat("a", "b"); !ok || s.Probes != 1 || s.Rate != rate {
			t.Errorf("stat = %+v %v", s, ok)
		}
	})
}

func TestBestPathRoutesAroundSlowEdge(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	rg.run(t, func(p *simproc.Proc) {
		if err := m.ProbeAll(p); err != nil {
			t.Error(err)
			return
		}
		path, bw := m.BestPath("a", "c")
		if strings.Join(path, ",") != "a,b,c" {
			t.Errorf("BestPath = %v (bw %v), want a,b,c", path, bw)
		}
		// Direct path preferred for the already-fast pair.
		path, _ = m.BestPath("a", "b")
		if strings.Join(path, ",") != "a,b" {
			t.Errorf("BestPath a->b = %v", path)
		}
	})
}

func TestMaxIntermediatesBoundsDetours(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	m.MaxIntermediates = 0
	rg.run(t, func(p *simproc.Proc) {
		if err := m.ProbeAll(p); err != nil {
			t.Error(err)
			return
		}
		path, _ := m.BestPath("a", "c")
		if strings.Join(path, ",") != "a,c" {
			t.Errorf("with 0 intermediates path = %v", path)
		}
	})
}

func TestSendUsesDetourAndBeatsDirect(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	rg.run(t, func(p *simproc.Proc) {
		if err := m.ProbeAll(p); err != nil {
			t.Error(err)
			return
		}
		size := 20e6
		path, detourSec, err := m.Send(p, "a", "c", size)
		if err != nil {
			t.Error(err)
			return
		}
		if strings.Join(path, ",") != "a,b,c" {
			t.Errorf("Send path = %v", path)
		}
		directSec, err := m.Transfer(p, []string{"a", "c"}, size)
		if err != nil {
			t.Error(err)
			return
		}
		// Direct 20MB at 1MB/s ≈ 20s; two-hop at 8MB/s ≈ 5s.
		if detourSec >= directSec {
			t.Errorf("overlay detour %v not faster than direct %v", detourSec, directSec)
		}
	})
	if rg.daemons["b"].Relayed != 1 {
		t.Fatalf("b relayed %d payloads, want 1", rg.daemons["b"].Relayed)
	}
}

func TestMonitorDetectsDegradation(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	m.Alpha = 0.9 // adapt fast in this test
	stop := m.Monitor(5)
	var before, after []string
	done := false
	rg.r.Go("scenario", func(p *simproc.Proc) {
		p.Sleep(20) // let several probe rounds land
		before, _ = m.BestPath("a", "c")
		// The fast ra->rb edge degrades to a trickle.
		e, _ := rg.g.Edge("ra", "rb")
		rg.g.Fluid().SetLinkLoad(e.Link, 0.95)
		p.Sleep(40)
		after, _ = m.BestPath("a", "c")
		stop()
		done = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("scenario did not finish")
	}
	if strings.Join(before, ",") != "a,b,c" {
		t.Fatalf("pre-degradation path = %v", before)
	}
	if strings.Join(after, ",") != "a,c" {
		t.Fatalf("monitor did not reroute after degradation: %v", after)
	}
}

func TestTransferValidation(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	rg.run(t, func(p *simproc.Proc) {
		if _, err := m.Transfer(p, []string{"a"}, 100); err == nil {
			t.Error("single-node path accepted")
		}
		if _, _, err := m.Send(p, "a", "c", 100); err == nil {
			t.Error("Send without probes should fail (no rates)")
		}
	})
}

func TestMeshValidation(t *testing.T) {
	rg := triangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("mesh with one member accepted")
		}
	}()
	NewMesh(rg.tn, "a", []string{"a"})
}

func TestMeshSurvivesDeadMember(t *testing.T) {
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "b", "c"})
	rg.run(t, func(p *simproc.Proc) {
		if err := m.ProbeAll(p); err != nil {
			t.Error(err)
			return
		}
		// c's access link dies in both directions: c is unreachable.
		rg.g.SetLinkState("c", "rc", false)
		rg.g.SetLinkState("rc", "c", false)
		if err := m.ProbeAll(p); err == nil {
			t.Error("probe sweep to a dead member should report an error")
		}
		// Stats for pairs involving c are zeroed; a<->b still works.
		if s, _ := m.Stat("a", "c"); s.Rate != 0 {
			t.Errorf("a->c rate = %v, want 0", s.Rate)
		}
		if s, _ := m.Stat("a", "b"); s.Rate <= 0 {
			t.Errorf("a->b rate = %v, want > 0", s.Rate)
		}
		if _, _, err := m.Send(p, "a", "c", 1e6); err == nil {
			t.Error("Send to dead member succeeded")
		}
		// Recovery: link back up, probes restore the path.
		rg.g.SetLinkState("c", "rc", true)
		rg.g.SetLinkState("rc", "c", true)
		if err := m.ProbeAll(p); err != nil {
			t.Errorf("post-recovery sweep: %v", err)
			return
		}
		if _, _, err := m.Send(p, "a", "c", 1e6); err != nil {
			t.Errorf("post-recovery Send: %v", err)
		}
	})
}

func TestUnderlayRerouteChangesOverlayRates(t *testing.T) {
	// Killing the slow ra-rc edge makes the underlay route a->c through
	// rb: the overlay's "direct" a->c probe then measures the fast path.
	rg := triangle(t)
	m := NewMesh(rg.tn, "a", []string{"a", "c"})
	rg.run(t, func(p *simproc.Proc) {
		before, err := m.Probe(p, "a", "c")
		if err != nil {
			t.Error(err)
			return
		}
		rg.g.SetLinkState("ra", "rc", false)
		rg.g.SetLinkState("rc", "ra", false)
		after, err := m.Probe(p, "a", "c")
		if err != nil {
			t.Error(err)
			return
		}
		if after <= before {
			t.Errorf("underlay reroute should raise a->c rate: %v -> %v", before, after)
		}
	})
}
