// Package journal is a crash-consistent write-ahead log for the
// scheduler's control plane. Records are framed with a magic byte, a
// type tag, a little-endian length, and a CRC32C (Castagnoli) checksum
// over the type and payload, so a reader can always recover the longest
// valid prefix of a journal that was torn mid-append or bit-flipped at
// rest: scanning stops at the first frame that fails the magic, length,
// or checksum test, and replay truncates the tail beyond it.
//
// The log grows append-only between compactions. A compaction rewrites
// the device with a snapshot record followed by the still-live tail and
// installs it atomically (Swap), so a crash during compaction leaves
// either the old journal or the new one — never a mix.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// ErrNoSpace reports an append the device refused because the log has
// reached its configured capacity. Callers that can shrink the log
// (compaction) should do so and retry; callers that cannot must degrade
// rather than tear the frame — a bounded device never persists a
// partial frame on ENOSPC, so the on-device prefix stays valid.
var ErrNoSpace = errors.New("journal: no space left on device")

// Frame layout: magic(1) type(1) len(4 LE) crc32c(4 LE) payload(len).
const (
	// Magic marks the start of every record frame.
	Magic = 0xA7
	// HeaderSize is the fixed frame overhead before the payload.
	HeaderSize = 10
	// MaxRecord bounds a single record's payload so a corrupted length
	// field cannot make the scanner chase gigabytes of garbage.
	MaxRecord = 16 << 20
)

// castagnoli is the CRC32C table (the polynomial used by ext4, iSCSI,
// and most storage-system WALs for exactly this job).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Rec is one decoded journal record.
type Rec struct {
	Type byte
	Data []byte
}

// Device is the persistence seam: an append-only byte log with an
// atomic whole-content swap for compaction. Implementations must make
// Swap atomic with respect to crashes (all-or-nothing).
type Device interface {
	// Bytes returns the current full content of the log.
	Bytes() []byte
	// Append writes b at the end of the log and returns the bytes
	// actually persisted (a torn write persists fewer than len(b)).
	Append(b []byte) (int, error)
	// Swap atomically replaces the whole log content with b.
	Swap(b []byte) error
	// Size returns the current log length in bytes.
	Size() int
}

// Encode frames one record.
func Encode(typ byte, data []byte) []byte {
	b := make([]byte, HeaderSize+len(data))
	b[0] = Magic
	b[1] = typ
	binary.LittleEndian.PutUint32(b[2:6], uint32(len(data)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(b[6:10], crc)
	copy(b[HeaderSize:], data)
	return b
}

// Scan decodes the longest valid prefix of b. It returns the records
// decoded and the byte offset of the end of the valid prefix; bytes
// beyond valid are a torn or corrupted tail. Scan never panics on any
// input.
func Scan(b []byte) (recs []Rec, valid int) {
	off := 0
	for off+HeaderSize <= len(b) {
		if b[off] != Magic {
			break
		}
		typ := b[off+1]
		n := int(binary.LittleEndian.Uint32(b[off+2 : off+6]))
		if n < 0 || n > MaxRecord || off+HeaderSize+n > len(b) {
			break
		}
		want := binary.LittleEndian.Uint32(b[off+6 : off+10])
		payload := b[off+HeaderSize : off+HeaderSize+n]
		crc := crc32.Update(0, castagnoli, []byte{typ})
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			break
		}
		data := make([]byte, n)
		copy(data, payload)
		recs = append(recs, Rec{Type: typ, Data: data})
		off += HeaderSize + n
	}
	return recs, off
}

// Replay scans the device and, if a torn or corrupted tail follows the
// valid prefix, truncates the log back to the prefix so subsequent
// appends start from a clean frame boundary. It returns the recovered
// records and the number of tail bytes discarded.
func Replay(dev Device) (recs []Rec, truncated int, err error) {
	b := dev.Bytes()
	recs, valid := Scan(b)
	if valid < len(b) {
		truncated = len(b) - valid
		prefix := make([]byte, valid)
		copy(prefix, b[:valid])
		if err := dev.Swap(prefix); err != nil {
			return recs, truncated, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	return recs, truncated, nil
}

// Writer appends framed records to a device.
type Writer struct {
	dev Device
}

// NewWriter returns a Writer over dev.
func NewWriter(dev Device) *Writer { return &Writer{dev: dev} }

// Append frames and appends one record. A short (torn) append is not an
// error here — it models a crash mid-write; the torn frame is discarded
// by the next Replay.
func (w *Writer) Append(typ byte, data []byte) error {
	_, err := w.dev.Append(Encode(typ, data))
	return err
}

// Compact atomically replaces the log with the given records (typically
// one snapshot record plus the live tail).
func (w *Writer) Compact(recs []Rec) error {
	var b []byte
	for _, r := range recs {
		b = append(b, Encode(r.Type, r.Data)...)
	}
	return w.dev.Swap(b)
}

// Device returns the underlying device.
func (w *Writer) Device() Device { return w.dev }

// --- MemDevice ---

// MemDevice is an in-memory Device with crash-injection hooks: the
// fault layer uses TornNextAppend to persist only a prefix of the next
// append (a torn write) and FlipByte to corrupt a byte at rest (bit
// rot).
type MemDevice struct {
	buf []byte
	// tornFrac, when in (0,1), truncates the next Append to that
	// fraction of the frame.
	tornFrac float64
	// Appends counts Append calls (for crash-point scheduling).
	Appends int
	// Capacity bounds the log size in bytes; zero means unbounded. An
	// Append that would exceed it persists nothing and returns
	// ErrNoSpace (whole-frame rejection, never a torn frame). Swap is
	// allowed whenever the new content itself fits, which is what lets
	// a compaction shrink an already-full log.
	Capacity int
	savedCap int
	clamped  bool
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Bytes implements Device.
func (m *MemDevice) Bytes() []byte { return m.buf }

// Size implements Device.
func (m *MemDevice) Size() int { return len(m.buf) }

// Append implements Device, honoring a pending torn-write injection.
func (m *MemDevice) Append(b []byte) (int, error) {
	m.Appends++
	if m.Capacity > 0 && len(m.buf)+len(b) > m.Capacity {
		return 0, ErrNoSpace
	}
	n := len(b)
	if m.tornFrac > 0 && m.tornFrac < 1 {
		n = int(float64(len(b)) * m.tornFrac)
		if n >= len(b) {
			n = len(b) - 1
		}
		if n < 1 {
			n = 1
		}
		m.tornFrac = 0
	}
	m.buf = append(m.buf, b[:n]...)
	return n, nil
}

// Swap implements Device. A swap whose new content itself exceeds the
// capacity is refused; a swap that shrinks (or fits) always succeeds,
// even on a full device — compaction must be able to reclaim space.
func (m *MemDevice) Swap(b []byte) error {
	if m.Capacity > 0 && len(b) > m.Capacity {
		return ErrNoSpace
	}
	m.buf = append(m.buf[:0:0], b...)
	return nil
}

// TornNextAppend arms a torn write: the next Append persists only frac
// of its bytes (clamped to at least 1 and at most len-1).
func (m *MemDevice) TornNextAppend(frac float64) {
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	m.tornFrac = frac
}

// FlipByte XORs the byte at off with 0xFF, silently ignoring an
// out-of-range offset — bit rot never errors.
func (m *MemDevice) FlipByte(off int) {
	if off >= 0 && off < len(m.buf) {
		m.buf[off] ^= 0xFF
	}
}

// ClampCapacity arms an ENOSPC condition: the capacity is pinned at
// the current log size, so every further append fails with ErrNoSpace
// until the log shrinks (compaction) or UnclampCapacity restores the
// configured bound. Idempotent.
func (m *MemDevice) ClampCapacity() {
	if m.clamped {
		return
	}
	m.savedCap, m.clamped = m.Capacity, true
	m.Capacity = len(m.buf)
	if m.Capacity == 0 {
		m.Capacity = 1 // an empty log still refuses appends while clamped
	}
}

// UnclampCapacity restores the capacity ClampCapacity saved.
func (m *MemDevice) UnclampCapacity() {
	if !m.clamped {
		return
	}
	m.Capacity, m.clamped = m.savedCap, false
}

// --- FileDevice ---

// FileDevice persists the log in a file; Swap writes a temp file in the
// same directory and renames it over the log, the standard atomic
// -install idiom. It carries the same crash-injection hooks as
// MemDevice (TornNextAppend, FlipByte) so the fault layer can tear and
// rot a real on-disk journal.
type FileDevice struct {
	path     string
	buf      []byte
	tornFrac float64
	// Capacity bounds the log size in bytes; zero means unbounded.
	// Semantics match MemDevice: Append past the bound persists
	// nothing and returns ErrNoSpace; Swap succeeds whenever the new
	// content fits.
	Capacity int
	savedCap int
	clamped  bool
}

// OpenFileDevice opens (or creates) the journal file at path and loads
// its content.
func OpenFileDevice(path string) (*FileDevice, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &FileDevice{path: path, buf: b}, nil
}

// Path returns the backing file path.
func (f *FileDevice) Path() string { return f.path }

// Bytes implements Device.
func (f *FileDevice) Bytes() []byte { return f.buf }

// Size implements Device.
func (f *FileDevice) Size() int { return len(f.buf) }

// Append implements Device, honoring a pending torn-write injection.
func (f *FileDevice) Append(b []byte) (int, error) {
	if f.Capacity > 0 && len(f.buf)+len(b) > f.Capacity {
		return 0, ErrNoSpace
	}
	if f.tornFrac > 0 && f.tornFrac < 1 {
		n := int(float64(len(b)) * f.tornFrac)
		if n >= len(b) {
			n = len(b) - 1
		}
		if n < 1 {
			n = 1
		}
		f.tornFrac = 0
		b = b[:n]
	}
	fh, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := fh.Write(b)
	if cerr := fh.Close(); err == nil {
		err = cerr
	}
	f.buf = append(f.buf, b[:n]...)
	return n, err
}

// Swap implements Device via temp-file + rename. Like MemDevice, a
// swap is refused only when the new content itself exceeds Capacity.
func (f *FileDevice) Swap(b []byte) error {
	if f.Capacity > 0 && len(b) > f.Capacity {
		return ErrNoSpace
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	f.buf = append(f.buf[:0:0], b...)
	return nil
}

// TornNextAppend arms a torn write: the next Append persists only frac
// of its bytes (clamped to at least 1 and at most len-1).
func (f *FileDevice) TornNextAppend(frac float64) {
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	f.tornFrac = frac
}

// FlipByte XORs the byte at off with 0xFF, in memory and on disk,
// silently ignoring an out-of-range offset — bit rot never errors.
func (f *FileDevice) FlipByte(off int) {
	if off < 0 || off >= len(f.buf) {
		return
	}
	f.buf[off] ^= 0xFF
	fh, err := os.OpenFile(f.path, os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fh.WriteAt(f.buf[off:off+1], int64(off)) //nolint:errcheck // silent by construction
	fh.Close()
}

// ClampCapacity arms an ENOSPC condition (see MemDevice.ClampCapacity).
func (f *FileDevice) ClampCapacity() {
	if f.clamped {
		return
	}
	f.savedCap, f.clamped = f.Capacity, true
	f.Capacity = len(f.buf)
	if f.Capacity == 0 {
		f.Capacity = 1
	}
}

// UnclampCapacity restores the capacity ClampCapacity saved.
func (f *FileDevice) UnclampCapacity() {
	if !f.clamped {
		return
	}
	f.Capacity, f.clamped = f.savedCap, false
}
