// Provider sweep: a miniature Table I — measure every client × provider
// × route cell at one file size and print the fastest/slowest summary
// matrix, demonstrating the measurement harness API end to end.
package main

import (
	"fmt"

	"detournet/internal/measure"
	"detournet/internal/scenario"
)

func main() {
	const sizeMB = 40
	fmt.Printf("Route summary for %d MB uploads (3 runs, mean of last 2)\n\n", sizeMB)
	fmt.Printf("%-12s", "")
	for _, p := range scenario.ProviderNames {
		fmt.Printf(" | %-34s", p)
	}
	fmt.Println()

	for _, client := range scenario.Clients {
		fmt.Printf("%-12s", client)
		for _, provider := range scenario.ProviderNames {
			w := scenario.Build(31337)
			g := measure.RunGrid(w, measure.GridSpec{
				Client: client, Provider: provider,
				SizesMB: []int{sizeMB},
				Runs:    3, Keep: 2, Seed: 1,
			})
			fast := g.Fastest(sizeMB)
			slow := g.Slowest(sizeMB)
			cell := fmt.Sprintf("best %s (%.0fs), worst %s",
				fast, g.Cell(sizeMB, fast).Summary.Mean, slow)
			fmt.Printf(" | %-34s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nCompare with the paper's Table I: detours win for Google Drive from")
	fmt.Println("UBC (via UAlberta) and Purdue (either detour); direct wins elsewhere.")
}
