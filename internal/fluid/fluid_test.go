package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"detournet/internal/simclock"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowUsesFullLink(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0.01)
	var doneAt simclock.Time
	n.StartFlow([]*Link{l}, 1000, FlowOpts{OnComplete: func(f *Flow) { doneAt = f.FinishedAt() }})
	eng.Run()
	if !almost(float64(doneAt), 10, 1e-9) {
		t.Fatalf("1000B over 100B/s finished at %v, want 10", doneAt)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f1 := n.StartFlow([]*Link{l}, 1000, FlowOpts{Label: "a"})
	f2 := n.StartFlow([]*Link{l}, 1000, FlowOpts{Label: "b"})
	if f1.Rate() != 50 || f2.Rate() != 50 {
		t.Fatalf("rates = %v %v, want 50 50", f1.Rate(), f2.Rate())
	}
	eng.Run()
	// Both share until t=20 when both finish together.
	if !almost(float64(f1.FinishedAt()), 20, 1e-6) || !almost(float64(f2.FinishedAt()), 20, 1e-6) {
		t.Fatalf("finish times %v %v, want 20 20", f1.FinishedAt(), f2.FinishedAt())
	}
}

func TestSecondFlowSpeedsUpAfterFirstCompletes(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f1 := n.StartFlow([]*Link{l}, 500, FlowOpts{})  // alone: 5s; shared: rate 50
	f2 := n.StartFlow([]*Link{l}, 1500, FlowOpts{}) // gets full link after f1 done
	eng.Run()
	// Shared at 50 each until f1 finishes at t=10 (500/50); f2 then has
	// 1000 left at rate 100, finishing at t=20.
	if !almost(float64(f1.FinishedAt()), 10, 1e-6) {
		t.Fatalf("f1 finished at %v, want 10", f1.FinishedAt())
	}
	if !almost(float64(f2.FinishedAt()), 20, 1e-6) {
		t.Fatalf("f2 finished at %v, want 20", f2.FinishedAt())
	}
}

func TestLateArrivalSlowsExistingFlow(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f1 := n.StartFlow([]*Link{l}, 1000, FlowOpts{})
	eng.Advance(5) // f1 delivered 500 at full rate
	f2 := n.StartFlow([]*Link{l}, 250, FlowOpts{})
	eng.Run()
	// From t=5 both run at 50. f2 finishes at t=10; f1 has 250 left,
	// finishes at 10+250/100 = 12.5.
	if !almost(float64(f2.FinishedAt()), 10, 1e-6) {
		t.Fatalf("f2 finished at %v, want 10", f2.FinishedAt())
	}
	if !almost(float64(f1.FinishedAt()), 12.5, 1e-6) {
		t.Fatalf("f1 finished at %v, want 12.5", f1.FinishedAt())
	}
}

func TestRateCapBinds(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f1 := n.StartFlow([]*Link{l}, 100, FlowOpts{RateCap: 10})
	f2 := n.StartFlow([]*Link{l}, 900, FlowOpts{})
	if !almost(f1.Rate(), 10, 1e-9) {
		t.Fatalf("capped flow rate = %v, want 10", f1.Rate())
	}
	// Max-min: the capped flow's unused share goes to the other flow.
	if !almost(f2.Rate(), 90, 1e-9) {
		t.Fatalf("uncapped flow rate = %v, want 90", f2.Rate())
	}
	eng.Run()
	if !almost(float64(f1.FinishedAt()), 10, 1e-6) || !almost(float64(f2.FinishedAt()), 10, 1e-6) {
		t.Fatalf("finish times %v %v", f1.FinishedAt(), f2.FinishedAt())
	}
}

func TestSetFlowCapMidTransfer(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f := n.StartFlow([]*Link{l}, 1000, FlowOpts{RateCap: 10})
	eng.Advance(10) // 100 bytes done
	n.SetFlowCap(f, 0)
	eng.Run()
	// Remaining 900 at 100 B/s: finishes at 19.
	if !almost(float64(f.FinishedAt()), 19, 1e-6) {
		t.Fatalf("finished at %v, want 19", f.FinishedAt())
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	a := n.AddLink("fast", 1000, 0.001)
	b := n.AddLink("slow", 10, 0.020)
	f := n.StartFlow([]*Link{a, b}, 100, FlowOpts{})
	if !almost(f.Rate(), 10, 1e-9) {
		t.Fatalf("rate = %v, want 10 (bottleneck)", f.Rate())
	}
	if d := PathDelay(f.Path()); !almost(d, 0.021, 1e-12) {
		t.Fatalf("PathDelay = %v", d)
	}
	eng.Run()
	if !almost(float64(f.FinishedAt()), 10, 1e-6) {
		t.Fatalf("finished at %v, want 10", f.FinishedAt())
	}
}

func TestCrossTrafficReducesRate(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f := n.StartFlow([]*Link{l}, 1000, FlowOpts{})
	eng.Advance(5) // 500 delivered
	n.SetLinkLoad(l, 0.5)
	eng.Run()
	// Remaining 500 at 50 B/s: finish at 15.
	if !almost(float64(f.FinishedAt()), 15, 1e-6) {
		t.Fatalf("finished at %v, want 15", f.FinishedAt())
	}
}

func TestLinkLoadClamped(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	n.SetLinkLoad(l, 2.0)
	if l.Load() > 0.99 {
		t.Fatalf("load = %v, want clamped <= 0.98", l.Load())
	}
	if l.Available() <= 0 {
		t.Fatal("available must stay positive under full load")
	}
	n.SetLinkLoad(l, -1)
	if l.Load() != 0 {
		t.Fatalf("negative load not clamped: %v", l.Load())
	}
}

func TestCancelFlow(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	called := false
	f1 := n.StartFlow([]*Link{l}, 1000, FlowOpts{OnComplete: func(*Flow) { called = true }})
	f2 := n.StartFlow([]*Link{l}, 500, FlowOpts{})
	eng.Advance(2)
	if !n.CancelFlow(f1) {
		t.Fatal("CancelFlow reported false")
	}
	if n.CancelFlow(f1) {
		t.Fatal("double cancel reported true")
	}
	eng.Run()
	if called {
		t.Fatal("cancelled flow ran OnComplete")
	}
	if f1.State() != FlowCancelled {
		t.Fatalf("state = %v", f1.State())
	}
	// f2: 100 bytes delivered by t=2 (shared), then full rate:
	// 400 remaining at 100 B/s => finish at 6.
	if !almost(float64(f2.FinishedAt()), 6, 1e-6) {
		t.Fatalf("f2 finished at %v, want 6", f2.FinishedAt())
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d", n.ActiveFlows())
	}
}

func TestRemainingAccounting(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	f := n.StartFlow([]*Link{l}, 1000, FlowOpts{})
	eng.Advance(3)
	if r := n.Remaining(f); !almost(r, 700, 1e-6) {
		t.Fatalf("Remaining = %v, want 700", r)
	}
	eng.Run()
	if r := n.Remaining(f); r != 0 {
		t.Fatalf("Remaining after done = %v", r)
	}
}

func TestParkingLotFairness(t *testing.T) {
	// Classic parking-lot: long flow crosses links A and B; two short
	// flows cross A and B respectively. Max-min: every flow gets C/2.
	eng := simclock.NewEngine()
	n := New(eng)
	a := n.AddLink("a", 100, 0)
	b := n.AddLink("b", 100, 0)
	long := n.StartFlow([]*Link{a, b}, 1e6, FlowOpts{})
	s1 := n.StartFlow([]*Link{a}, 1e6, FlowOpts{})
	s2 := n.StartFlow([]*Link{b}, 1e6, FlowOpts{})
	for _, f := range []*Flow{long, s1, s2} {
		if !almost(f.Rate(), 50, 1e-9) {
			t.Fatalf("parking-lot rate = %v, want 50", f.Rate())
		}
	}
}

func TestUnevenBottlenecksMaxMin(t *testing.T) {
	// Flow1 on a 10-link alone would get 10; flow2 shares a 100-link with
	// flow3. Max-min: f1=10, f2=f3=50.
	eng := simclock.NewEngine()
	n := New(eng)
	small := n.AddLink("small", 10, 0)
	big := n.AddLink("big", 100, 0)
	f1 := n.StartFlow([]*Link{small, big}, 1e6, FlowOpts{})
	f2 := n.StartFlow([]*Link{big}, 1e6, FlowOpts{})
	if !almost(f1.Rate(), 10, 1e-9) {
		t.Fatalf("f1 rate = %v, want 10", f1.Rate())
	}
	if !almost(f2.Rate(), 90, 1e-9) {
		t.Fatalf("f2 rate = %v, want 90 (max-min residual)", f2.Rate())
	}
}

func TestBottleneckCapacity(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	a := n.AddLink("a", 100, 0)
	b := n.AddLink("b", 30, 0)
	if c := BottleneckCapacity([]*Link{a, b}); !almost(c, 30, 1e-9) {
		t.Fatalf("BottleneckCapacity = %v", c)
	}
	n.SetLinkLoad(b, 0.5)
	if c := BottleneckCapacity([]*Link{a, b}); !almost(c, 15, 1e-9) {
		t.Fatalf("BottleneckCapacity under load = %v", c)
	}
	if c := BottleneckCapacity(nil); c != 0 {
		t.Fatalf("empty path capacity = %v", c)
	}
}

func TestStartFlowValidation(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("l", 100, 0)
	for _, fn := range []func(){
		func() { n.StartFlow(nil, 10, FlowOpts{}) },
		func() { n.StartFlow([]*Link{l}, 0, FlowOpts{}) },
		func() { n.StartFlow([]*Link{l}, math.NaN(), FlowOpts{}) },
		func() { n.AddLink("bad", 0, 0) },
		func() { n.AddLink("bad", 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: total allocated rate on any link never exceeds its available
// capacity, and every flow eventually completes, delivering exactly its
// byte count (work conservation under random arrivals).
func TestPropertyConservationAndCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := simclock.NewEngine()
		n := New(eng)
		links := make([]*Link, 5)
		for i := range links {
			links[i] = n.AddLink("l", 50+float64(rng.Intn(200)), 0.001)
		}
		type rec struct {
			bytes float64
			f     *Flow
		}
		var recs []*rec
		for i := 0; i < 15; i++ {
			i := i
			eng.Schedule(simclock.Time(rng.Float64()*20), func() {
				// Random sub-path of 1-3 links.
				k := 1 + rng.Intn(3)
				perm := rng.Perm(len(links))[:k]
				path := make([]*Link, k)
				for j, p := range perm {
					path[j] = links[p]
				}
				r := &rec{bytes: 100 + float64(rng.Intn(5000))}
				opts := FlowOpts{Label: "f"}
				if i%3 == 0 {
					opts.RateCap = 20 + rng.Float64()*100
				}
				r.f = n.StartFlow(path, r.bytes, opts)
				recs = append(recs, r)

				// Capacity invariant check at every arrival.
				for _, l := range links {
					var sum float64
					for _, fl := range l.flows {
						sum += fl.rate
					}
					if sum > l.Available()*(1+1e-6) {
						panic("link over-allocated")
					}
				}
				// Cap invariant.
				for _, fl := range n.flows {
					if fl.rate > fl.cap*(1+1e-9) {
						panic("flow over its cap")
					}
				}
			})
		}
		eng.Run()
		for _, r := range recs {
			if r.f.State() != FlowDone {
				return false
			}
			// Duration must be at least bytes / bottleneck capacity.
			dur := float64(r.f.FinishedAt() - r.f.StartedAt())
			minDur := r.bytes / BottleneckCapacity(r.f.Path())
			if dur < minDur*(1-1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with k identical flows on one link, each gets C/k and all
// finish simultaneously.
func TestPropertyEqualSharing(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%10) + 1
		eng := simclock.NewEngine()
		n := New(eng)
		l := n.AddLink("l", 100, 0)
		flows := make([]*Flow, k)
		for i := range flows {
			flows[i] = n.StartFlow([]*Link{l}, 1000, FlowOpts{})
		}
		for _, fl := range flows {
			if !almost(fl.Rate(), 100/float64(k), 1e-6) {
				return false
			}
		}
		eng.Run()
		want := 1000 * float64(k) / 100
		for _, fl := range flows {
			if !almost(float64(fl.FinishedAt()), want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPerFlowCapFirewall(t *testing.T) {
	// A 100 B/s link with a 10 B/s per-flow cap: one flow gets 10, five
	// flows get 10 each (the firewall, not the wire, binds).
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("fw", 100, 0)
	l.FlowCap = 10
	var flows []*Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, n.StartFlow([]*Link{l}, 1000, FlowOpts{}))
	}
	for i, f := range flows {
		if !almost(f.Rate(), 10, 1e-9) {
			t.Fatalf("flow %d rate = %v, want 10 (per-flow cap)", i, f.Rate())
		}
	}
	eng.Run()
	for _, f := range flows {
		if !almost(float64(f.FinishedAt()), 100, 1e-6) {
			t.Fatalf("capped flow finished at %v, want 100", f.FinishedAt())
		}
	}
}

func TestPerFlowCapInteractsWithExternalCap(t *testing.T) {
	eng := simclock.NewEngine()
	n := New(eng)
	l := n.AddLink("fw", 100, 0)
	l.FlowCap = 10
	// External cap tighter than the firewall: external wins.
	f1 := n.StartFlow([]*Link{l}, 100, FlowOpts{RateCap: 4})
	if !almost(f1.Rate(), 4, 1e-9) {
		t.Fatalf("rate = %v, want 4", f1.Rate())
	}
	// External cap looser: firewall wins.
	f2 := n.StartFlow([]*Link{l}, 100, FlowOpts{RateCap: 50})
	if !almost(f2.Rate(), 10, 1e-9) {
		t.Fatalf("rate = %v, want 10", f2.Rate())
	}
	eng.Run()
}

func TestPerFlowCapOnlyOnFirewalledPath(t *testing.T) {
	// Two parallel paths: one firewalled, one clean. The clean path's
	// flow runs at link speed.
	eng := simclock.NewEngine()
	n := New(eng)
	fw := n.AddLink("fw", 100, 0)
	fw.FlowCap = 5
	clean := n.AddLink("clean", 100, 0)
	f1 := n.StartFlow([]*Link{fw}, 100, FlowOpts{})
	f2 := n.StartFlow([]*Link{clean}, 100, FlowOpts{})
	if !almost(f1.Rate(), 5, 1e-9) || !almost(f2.Rate(), 100, 1e-9) {
		t.Fatalf("rates = %v %v, want 5 100", f1.Rate(), f2.Rate())
	}
	eng.Run()
}

func BenchmarkMaxMinReallocation(b *testing.B) {
	eng := simclock.NewEngine()
	n := New(eng)
	links := make([]*Link, 20)
	for i := range links {
		links[i] = n.AddLink("l", 1e9, 0.001)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		k := 1 + rng.Intn(3)
		path := make([]*Link, k)
		for j := 0; j < k; j++ {
			path[j] = links[rng.Intn(len(links))]
		}
		// Enormous flows so none complete during the benchmark.
		n.StartFlow(dedupLinks(path), 1e18, FlowOpts{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SetLinkLoad(links[i%len(links)], float64(i%50)/100)
	}
}

func dedupLinks(in []*Link) []*Link {
	seen := map[*Link]bool{}
	var out []*Link
	for _, l := range in {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// TestPropertyMaxMinCharacterization verifies the defining property of a
// max-min fair allocation: every flow is either at its (effective) rate
// cap, or crosses at least one saturated link on which no other flow
// receives a strictly higher rate. This characterization is necessary
// and sufficient, so it pins the allocator's correctness without
// reimplementing it.
func TestPropertyMaxMinCharacterization(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := simclock.NewEngine()
		n := New(eng)
		links := make([]*Link, 2+rng.Intn(6))
		for i := range links {
			links[i] = n.AddLink("l", 10+float64(rng.Intn(190)), 0)
			if rng.Intn(4) == 0 {
				links[i].FlowCap = 5 + float64(rng.Intn(50))
			}
		}
		var flows []*Flow
		for i := 0; i < 1+rng.Intn(10); i++ {
			k := 1 + rng.Intn(3)
			perm := rng.Perm(len(links))
			if k > len(perm) {
				k = len(perm)
			}
			path := make([]*Link, k)
			for j := 0; j < k; j++ {
				path[j] = links[perm[j]]
			}
			opts := FlowOpts{}
			if rng.Intn(3) == 0 {
				opts.RateCap = 1 + rng.Float64()*80
			}
			flows = append(flows, n.StartFlow(path, 1e12, opts))
		}
		effCap := func(f *Flow) float64 {
			c := f.cap
			for _, l := range f.path {
				if l.FlowCap > 0 && l.FlowCap < c {
					c = l.FlowCap
				}
			}
			return c
		}
		for fi, f := range flows {
			if f.Rate() >= effCap(f)*(1-1e-9) {
				continue // cap-limited: fine
			}
			bottlenecked := false
			for _, l := range f.path {
				var used, maxRate float64
				for _, g := range l.flows {
					used += g.Rate()
					if g.Rate() > maxRate {
						maxRate = g.Rate()
					}
				}
				saturated := used >= l.Available()*(1-1e-6)
				if saturated && f.Rate() >= maxRate*(1-1e-6) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				t.Fatalf("seed %d: flow %d (rate %v, cap %v) is neither cap-limited nor bottlenecked",
					seed, fi, f.Rate(), effCap(f))
			}
		}
		// Cleanup so the engine does not run forever.
		for _, f := range flows {
			n.CancelFlow(f)
		}
	}
}
