package core

import (
	"strings"
	"testing"

	"detournet/internal/rsyncx"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
)

func TestRerouteOrder(t *testing.T) {
	ck := &Checkpoint{Hop1Via: "dtn-a", Hop1High: 9e6}
	cur := ViaRoute("dtn-b")
	got := RerouteOrder(ck, cur, []Route{ViaRoute("dtn-a"), ViaRoute("dtn-b"), DirectRoute, ViaRoute("dtn-c")})
	want := []Route{cur, ViaRoute("dtn-a"), DirectRoute, ViaRoute("dtn-c")}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}

	// No staged hop-1 bytes: the checkpoint's DTN earns no preference.
	got = RerouteOrder(&Checkpoint{Hop1Via: "dtn-a"}, DirectRoute, nil)
	if len(got) != 1 || got[0] != DirectRoute {
		t.Fatalf("order without progress = %v, want just direct", got)
	}
}

// TestCheckpointReattachAcrossReroute is the make-before-break
// satellite's core proof: a detour transfer killed mid-chunk on its
// second hop (the withdraw) carries its provider session token to a
// different path entirely and resumes at exactly the committed offset —
// the object completes intact, and the only re-sent bytes are the
// forfeited hop-1 staging, not provider-session progress.
func TestCheckpointReattachAcrossReroute(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	direct := tb.directClient()
	good := rsyncx.Checksum([]byte("the rerouted file"))
	const size = 40e6

	ck := &Checkpoint{}
	tb.run(t, func(p *simproc.Proc) {
		// The detour upload runs as its own process; the main process
		// plays the routing plane and withdraws the DTN's provider path
		// mid-relay.
		det := simproc.NewFuture[error](p.Runner())
		p.Runner().Go("detour-upload", func(pp *simproc.Proc) {
			_, err := dc.UploadResumable(pp, "GoogleDrive", "r.bin", size, good, ck)
			det.Set(err)
		})
		// Hop 1 (8 MB/s, 40 MB) takes ~5 s; by 7 s the relay is a chunk or
		// two into hop 2.
		p.Sleep(simclock.Duration(7))
		if det.IsSet() {
			t.Error("upload finished before the withdraw; slow the schedule down")
			return
		}
		// The withdraw: every edge into the provider goes down, killing
		// the in-flight hop-2 flow. Both must drop — the HTTP layer
		// redials killed connections, and with only the DTN edge down the
		// triangle self-heals via user.
		tb.linkState("dtn", "provider-dc", false)
		tb.linkState("user", "provider-dc", false)
		err := simproc.Await(p, det)
		if err == nil || !strings.Contains(err.Error(), "hop2") {
			t.Errorf("detour upload err = %v, want a hop-2 failure", err)
			return
		}

		// The agent's failure reply carried the session token and the
		// committed offset: the checkpoint holds real, partial progress.
		if !ck.HasSession {
			t.Error("checkpoint lost the provider session across the kill")
			return
		}
		offset := ck.Hop2High
		if offset <= 0 || offset >= size {
			t.Errorf("committed offset = %.0f, want mid-transfer", offset)
			return
		}
		resumedBefore := ck.BytesResumed

		// Reconvergence: the direct edge comes back; the DTN's provider
		// edge stays withdrawn, so the old path is truly gone.
		tb.linkState("user", "provider-dc", true)

		// Reroute: same checkpoint, entirely different path. The session
		// token is server-side state, so the direct path must reattach at
		// the committed offset, not byte zero.
		rep, err := DirectUploadResumable(p, direct, "r.bin", size, good, ck)
		if err != nil {
			t.Errorf("rerouted resume failed: %v", err)
			return
		}
		if rep.Info.MD5 != good {
			t.Errorf("rerouted digest = %q, want %q", rep.Info.MD5, good)
		}
		if got := ck.BytesResumed - resumedBefore; got != offset {
			t.Errorf("reattached at %.0f, want the committed offset %.0f", got, offset)
		}
		// The staged hop-1 copy is forfeited by leaving the DTN — that,
		// and nothing of the provider session, is the re-send cost.
		if ck.BytesRewritten != size {
			t.Errorf("rewritten = %.0f, want exactly the %0.f staged hop-1 bytes", ck.BytesRewritten, float64(size))
		}
		if o, ok := tb.svc.Store.Get("r.bin"); !ok || o.Size != size || o.MD5 != good {
			t.Errorf("stored object = %+v, want complete %.0f-byte file", o, float64(size))
		}
	})
}

// TestAgentDrainRefusesNewWork: a draining DTN bounces new uploads with
// the load-bearing "draining" error but still completes transfers whose
// checkpoints already hold a session there — the continuation carve-out
// relayResume's HasToken encodes.
func TestAgentDrainRefusesNewWork(t *testing.T) {
	tb := newTestbed(t)
	dc := NewDetourClient(tb.tn, "user", "dtn")
	good := rsyncx.Checksum([]byte("drain me gently"))
	const size = 30e6

	ck := &Checkpoint{}
	tb.run(t, func(p *simproc.Proc) {
		det := simproc.NewFuture[error](p.Runner())
		p.Runner().Go("pre-drain-upload", func(pp *simproc.Proc) {
			_, err := dc.UploadResumable(pp, "GoogleDrive", "d.bin", size, good, ck)
			det.Set(err)
		})
		p.Sleep(simclock.Duration(5.5)) // hop 1 ends ~4 s in; this is mid-hop2
		if det.IsSet() {
			t.Error("upload finished before the drain")
			return
		}
		tb.agent.Drain()
		tb.linkState("dtn", "provider-dc", false)
		tb.linkState("user", "provider-dc", false)
		if err := simproc.Await(p, det); err == nil {
			t.Error("killed relay reported success")
			return
		}
		if !ck.HasSession {
			t.Error("checkpoint lost the session")
			return
		}
		// The withdrawn paths re-announce; only the drain now stands
		// between the DTN and new work.
		tb.linkState("dtn", "provider-dc", true)
		tb.linkState("user", "provider-dc", true)

		// New work is refused while draining...
		var fresh Checkpoint
		_, err := dc.UploadResumable(p, "GoogleDrive", "new.bin", 5e6, "", &fresh)
		if err == nil || !strings.Contains(err.Error(), "draining") {
			t.Errorf("new upload on draining DTN err = %v, want a draining refusal", err)
		}
		if tb.agent.DrainRejects == 0 {
			t.Error("agent counted no drain rejects")
		}

		// ...but the interrupted job, whose token marks it a
		// continuation, runs to completion on the same DTN.
		rep, err := dc.UploadResumable(p, "GoogleDrive", "d.bin", size, good, ck)
		if err != nil {
			t.Errorf("continuation on draining DTN failed: %v", err)
			return
		}
		if rep.Info.MD5 != good {
			t.Errorf("continuation digest = %q, want %q", rep.Info.MD5, good)
		}

		// Undrain restores new-work service.
		tb.agent.Undrain()
		if _, err := dc.UploadResumable(p, "GoogleDrive", "new.bin", 5e6, "", &fresh); err != nil {
			t.Errorf("upload after Undrain failed: %v", err)
		}
	})
}
