package health

import (
	"strings"
	"testing"
)

// clock is a hand-advanced virtual clock for deterministic tests.
type clock struct{ now float64 }

func (c *clock) fn() func() float64 { return func() float64 { return c.now } }

// newTracker builds a tracker on a hand clock with Alpha 1 (the EWMA
// degenerates to last-observation, making budget arithmetic exact).
func newTracker(c *clock, opt Options) *Tracker {
	opt.Now = c.fn()
	if opt.Alpha == 0 {
		opt.Alpha = 1
	}
	return New(opt)
}

func TestBaselineLearning(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{})
	if _, ok := tr.Baseline(ClassRoute, "r"); ok {
		t.Fatal("baseline exists before any observation")
	}
	tr.ObserveTransfer(ClassRoute, "r", 10e6, 10) // 1 MB/s
	if b, ok := tr.Baseline(ClassRoute, "r"); !ok || b != 1e6 {
		t.Fatalf("baseline = %v,%v, want 1e6", b, ok)
	}
	// Zero or negative inputs are ignored, not folded in as zero rates.
	tr.ObserveTransfer(ClassRoute, "r", 0, 10)
	tr.ObserveTransfer(ClassRoute, "r", 10e6, 0)
	if b, _ := tr.Baseline(ClassRoute, "r"); b != 1e6 {
		t.Fatalf("degenerate observations moved the baseline to %v", b)
	}
}

// TestOutlierEjection: an entity sustained below OutlierFrac of the
// peer median for OutlierStreak observations goes to probation and gets
// the probation weight; its outlier samples must not drag its own
// baseline down while it is still judged healthy.
func TestOutlierEjection(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{})
	tr.ObserveTransfer(ClassRoute, "fast", 10e6, 1) // peer baseline 10 MB/s
	tr.ObserveTransfer(ClassRoute, "slow", 10e6, 1) // healthy once
	base0, _ := tr.Baseline(ClassRoute, "slow")

	// Default OutlierFrac 0.4 of median 10 MB/s = 4 MB/s; 1 MB/s is an
	// outlier. Streak must reach 3.
	for i := 0; i < 2; i++ {
		tr.ObserveTransfer(ClassRoute, "slow", 1e6, 1)
		if tr.Probation(ClassRoute, "slow") {
			t.Fatalf("ejected after %d outliers, want 3", i+1)
		}
	}
	if b, _ := tr.Baseline(ClassRoute, "slow"); b != base0 {
		t.Errorf("outlier samples moved a healthy entity's baseline: %v -> %v", base0, b)
	}
	c.now = 100
	tr.ObserveTransfer(ClassRoute, "slow", 1e6, 1)
	if !tr.Probation(ClassRoute, "slow") {
		t.Fatal("3-outlier streak did not eject")
	}
	if w := tr.Weight(ClassRoute, "slow"); w != 0.1 {
		t.Errorf("probation weight = %v, want 0.1", w)
	}
	if w := tr.Weight(ClassRoute, "fast"); w != 1 {
		t.Errorf("healthy weight = %v, want 1", w)
	}
	if trs := tr.Transitions(); len(trs) != 1 || !strings.Contains(trs[0], "t=100.000 route slow healthy->probation") {
		t.Errorf("transitions = %v", trs)
	}
	// A healthy observation resets the streak: no sticky ejection from
	// stale history.
	tr.ObserveTransfer(ClassRoute, "fast", 1e6, 1)
	tr.ObserveTransfer(ClassRoute, "fast", 10e6, 1)
	if tr.Probation(ClassRoute, "fast") {
		t.Fatal("single outlier ejected after a healthy reset")
	}
}

// TestStallCountsDouble: a watchdog abort is the strongest outlier
// signal, advancing the streak by two — so two stalls eject where three
// slow observations would be needed.
func TestStallCountsDouble(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{})
	tr.NoteStall(ClassDTN, "sick")
	if tr.Probation(ClassDTN, "sick") {
		t.Fatal("one stall ejected (streak 2 < 3)")
	}
	tr.NoteStall(ClassDTN, "sick")
	if !tr.Probation(ClassDTN, "sick") {
		t.Fatal("two stalls (streak 4) did not eject")
	}
}

// TestCanaryBackoffAndReadmission walks the full probation round trip:
// canary slots are rate-limited, failed canaries back off exponentially
// with a cap, and CanarySuccesses healthy observations re-admit.
func TestCanaryBackoffAndReadmission(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{CanaryInterval: 45})
	tr.ObserveTransfer(ClassRoute, "peer", 10e6, 1)
	c.now = 10
	// Three slow observations eject. (Ejection via NoteStall would also
	// prime canaryMiss — its second judge lands with probation already
	// set — so this test takes the plain-outlier road.)
	for i := 0; i < 3; i++ {
		tr.ObserveTransfer(ClassRoute, "gray", 1e6, 1)
	}
	if !tr.Probation(ClassRoute, "gray") {
		t.Fatal("setup: not on probation")
	}
	if tr.CanaryTake(ClassRoute, "peer") {
		t.Fatal("canary granted for a healthy entity")
	}
	// Ejection primes lastCanary: no canary inside the first interval.
	c.now = 54
	if tr.CanaryTake(ClassRoute, "gray") {
		t.Fatal("canary granted before the first interval elapsed")
	}
	c.now = 55
	if !tr.CanaryTake(ClassRoute, "gray") {
		t.Fatal("canary denied after a full interval")
	}
	if tr.CanaryTake(ClassRoute, "gray") {
		t.Fatal("second canary granted inside the same interval")
	}

	// The canary comes back sick: the next slot needs 2 intervals, the
	// one after 4, then 8 — and the backoff caps at 8.
	for _, wait := range []float64{90, 180, 360, 360} {
		tr.ObserveTransfer(ClassRoute, "gray", 1e6, 1) // outlier: canaryMiss++
		granted := c.now
		c.now = granted + wait - 1
		if tr.CanaryTake(ClassRoute, "gray") {
			t.Fatalf("canary after %v s, want backoff of %v", wait-1, wait)
		}
		c.now = granted + wait
		if !tr.CanaryTake(ClassRoute, "gray") {
			t.Fatalf("canary denied after full backoff %v", wait)
		}
	}

	// Two healthy canaries re-admit; the weight recovers.
	tr.ObserveTransfer(ClassRoute, "gray", 10e6, 1)
	if !tr.Probation(ClassRoute, "gray") {
		t.Fatal("re-admitted after one healthy canary, want two")
	}
	tr.ObserveTransfer(ClassRoute, "gray", 10e6, 1)
	if tr.Probation(ClassRoute, "gray") {
		t.Fatal("two healthy canaries did not re-admit")
	}
	if w := tr.Weight(ClassRoute, "gray"); w != 1 {
		t.Errorf("weight after re-admission = %v, want 1", w)
	}
}

// TestBudgetArithmetic pins the watchdog budget formula: DefaultBudget
// unlearned, size/(baseline·FloorFrac)+Grace learned, MinBudget floor —
// and the probation tightening (half budget, half floor) that keeps
// canary probes cheap.
func TestBudgetArithmetic(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{})
	if b := tr.Budget(ClassRoute, "r", 100e6); b != 600 {
		t.Errorf("unlearned budget = %v, want DefaultBudget 600", b)
	}
	tr.ObserveTransfer(ClassRoute, "r", 10e6, 10) // baseline 1 MB/s
	// 100 MB at 0.25 MB/s = 400 s, + 30 grace.
	if b := tr.Budget(ClassRoute, "r", 100e6); b != 430 {
		t.Errorf("learned budget = %v, want 430", b)
	}
	// 10 MB would be 40+30=70: floored at MinBudget 90.
	if b := tr.Budget(ClassRoute, "r", 10e6); b != 90 {
		t.Errorf("small-file budget = %v, want MinBudget 90", b)
	}
	tr.NoteStall(ClassRoute, "r")
	tr.NoteStall(ClassRoute, "r")
	if !tr.Probation(ClassRoute, "r") {
		t.Fatal("setup: not on probation")
	}
	if b := tr.Budget(ClassRoute, "r", 100e6); b != 215 {
		t.Errorf("probation budget = %v, want 430/2", b)
	}
	if b := tr.Budget(ClassRoute, "r", 10e6); b != 45 {
		t.Errorf("probation small-file budget = %v, want MinBudget/2", b)
	}
}

// TestRetryBudgetEconomics: retries spend whole tokens that successes
// earn back at RetryEarn, exhaustion parks with the RetryAfter hint,
// and recovery re-arms the exhaustion transition log.
func TestRetryBudgetEconomics(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{RetryBurst: 2, RetryEarn: 0.5, RetryAfter: 7})
	for i := 0; i < 2; i++ {
		if ok, _ := tr.AllowRetry("P"); !ok {
			t.Fatalf("retry %d denied with tokens in the bucket", i+1)
		}
	}
	ok, after := tr.AllowRetry("P")
	if ok || after != 7 {
		t.Fatalf("exhausted bucket: ok=%v after=%v, want false/7", ok, after)
	}
	if trs := tr.Transitions(); len(trs) != 1 || !strings.Contains(trs[0], "budget P exhausted") {
		t.Errorf("transitions = %v, want one exhaustion line", trs)
	}
	// 0.5 tokens is still not a whole retry.
	tr.NoteSuccess("P")
	if ok, _ := tr.AllowRetry("P"); ok {
		t.Fatal("half a token funded a retry")
	}
	tr.NoteSuccess("P")
	tr.NoteSuccess("P") // 1.5 tokens
	if ok, _ := tr.AllowRetry("P"); !ok {
		t.Fatal("earned tokens did not fund a retry")
	}
	// The bucket never overfills past RetryBurst.
	for i := 0; i < 50; i++ {
		tr.NoteSuccess("P")
	}
	bs := tr.RetryBudgets()
	if len(bs) != 1 || bs[0].Tokens != 2 {
		t.Fatalf("budgets = %+v, want tokens capped at burst 2", bs)
	}
	if bs[0].Spent != 3 || bs[0].Denied != 0 {
		t.Errorf("spent=%d denied=%d, want 3 spent and denied reset on recovery", bs[0].Spent, bs[0].Denied)
	}
}

// TestSnapshotDeterministic: the health table sorts by class then name.
func TestSnapshotDeterministic(t *testing.T) {
	c := &clock{}
	tr := newTracker(c, Options{})
	tr.ObserveTransfer(ClassRoute, "b", 1e6, 1)
	tr.ObserveTransfer(ClassDTN, "z", 1e6, 1)
	tr.ObserveTransfer(ClassRoute, "a", 1e6, 1)
	snap := tr.Snapshot()
	want := []string{"dtn|z", "route|a", "route|b"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot rows = %d, want %d", len(snap), len(want))
	}
	for i, e := range snap {
		if e.Class+"|"+e.Entity != want[i] {
			t.Errorf("row %d = %s|%s, want %s", i, e.Class, e.Entity, want[i])
		}
	}
}
