package measure

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
)

// smallSpec keeps harness tests fast: 2 sizes, 3 runs keep 2.
func smallSpec(client, provider string) GridSpec {
	return GridSpec{
		Client: client, Provider: provider,
		SizesMB: []int{10, 20},
		Runs:    3, Keep: 2,
		Seed: 99,
	}
}

func TestRunGridShape(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	if len(g.Cells) != 2*3 {
		t.Fatalf("cells = %d, want 6", len(g.Cells))
	}
	for _, c := range g.Cells {
		if len(c.Runs) != 3 {
			t.Fatalf("runs = %d", len(c.Runs))
		}
		if c.Summary.N != 2 {
			t.Fatalf("kept %d runs, want 2", c.Summary.N)
		}
		if c.Summary.Mean <= 0 {
			t.Fatalf("non-positive mean: %+v", c)
		}
		if c.Route.Kind == core.Detour && c.Hop1 <= 0 {
			t.Fatalf("detour cell missing hop1: %+v", c)
		}
		if c.Route.Kind == core.Direct && c.Hop1 != 0 {
			t.Fatalf("direct cell has hop1: %+v", c)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	run := func() []float64 {
		w := scenario.Build(42)
		g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
		var out []float64
		for _, c := range g.Cells {
			out = append(out, c.Runs...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grid not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCellAndSeriesLookups(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	c := g.Cell(10, core.DirectRoute)
	if c == nil || c.SizeMB != 10 {
		t.Fatalf("Cell lookup: %+v", c)
	}
	if g.Cell(999, core.DirectRoute) != nil {
		t.Fatal("bogus size resolved")
	}
	s := g.Series(core.ViaRoute(scenario.UAlberta))
	if len(s) != 2 || s[0] <= 0 {
		t.Fatalf("series = %v", s)
	}
	// Transfer time grows with size on every route.
	for _, r := range g.Spec.Routes {
		ss := g.Series(r)
		if ss[1] <= ss[0] {
			t.Fatalf("series for %v not increasing: %v", r, ss)
		}
	}
}

func TestFormatTable(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	out := g.FormatTable()
	if !strings.Contains(out, "Size(MB)") || !strings.Contains(out, "Direct") {
		t.Fatalf("table header missing:\n%s", out)
	}
	if !strings.Contains(out, "via ualberta") {
		t.Fatalf("detour column missing:\n%s", out)
	}
	// Relative percentages in brackets for detours.
	if !strings.Contains(out, "[") || !strings.Contains(out, "%]") {
		t.Fatalf("relative change missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+2 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestFormatFigure(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	out := g.FormatFigure("Fig X")
	if !strings.HasPrefix(out, "Fig X\n") || !strings.Contains(out, "±") {
		t.Fatalf("figure format:\n%s", out)
	}
}

func TestFastestSlowestAndExceptions(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	// On UBC->GDrive the UAlberta detour wins at every size.
	fast, slow := g.OverallFastest()
	if fast != core.ViaRoute(scenario.UAlberta) {
		t.Fatalf("overall fastest = %v", fast)
	}
	if slow != core.ViaRoute(scenario.UMich) {
		t.Fatalf("overall slowest = %v", slow)
	}
	for _, mb := range g.Spec.SizesMB {
		if g.Fastest(mb) != fast {
			t.Fatalf("per-size fastest at %dMB = %v", mb, g.Fastest(mb))
		}
		if g.Slowest(mb) != slow {
			t.Fatalf("per-size slowest at %dMB = %v", mb, g.Slowest(mb))
		}
	}
	if ex := g.Exceptions(); len(ex) != 0 {
		t.Fatalf("unexpected exceptions: %v", ex)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := GridSpec{Client: "c", Provider: "p"}.WithDefaults()
	if s.Runs != 7 || s.Keep != 5 {
		t.Fatalf("protocol defaults: %+v", s)
	}
	if len(s.SizesMB) != 7 || s.SizesMB[6] != 100 {
		t.Fatalf("sizes: %v", s.SizesMB)
	}
	if len(s.Routes) != 3 {
		t.Fatalf("routes: %v", s.Routes)
	}
}

func TestWriteCSV(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+6 { // header + 2 sizes x 3 routes
		t.Fatalf("csv rows = %d, want 7", len(recs))
	}
	if recs[0][0] != "client" || recs[0][4] != "mean_s" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != scenario.UBC || recs[1][1] != scenario.GoogleDrive {
		t.Fatalf("row = %v", recs[1])
	}
	// Raw runs column holds 3 semicolon-separated values.
	if got := strings.Count(recs[1][9], ";"); got != 2 {
		t.Fatalf("runs column = %q", recs[1][9])
	}
}

func TestWriteJSON(t *testing.T) {
	w := scenario.Build(42)
	g := RunGrid(w, smallSpec(scenario.UBC, scenario.GoogleDrive))
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var cells []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("json cells = %d", len(cells))
	}
	c := cells[0]
	if c["client"] != scenario.UBC || c["size_mb"].(float64) != 10 {
		t.Fatalf("cell = %v", c)
	}
	if len(c["runs_s"].([]any)) != 3 {
		t.Fatalf("runs_s = %v", c["runs_s"])
	}
}

func TestDownloadGrid(t *testing.T) {
	w := scenario.Build(42)
	spec := smallSpec(scenario.UBC, scenario.GoogleDrive)
	spec.Direction = Download
	g := RunGrid(w, spec)
	if len(g.Cells) != 6 {
		t.Fatalf("cells = %d", len(g.Cells))
	}
	for _, c := range g.Cells {
		if c.Summary.Mean <= 0 {
			t.Fatalf("cell %+v", c)
		}
	}
	// Downloads cross the reverse paths: the google-peer route serves
	// gdrive->vncv1 so the detour via UAlberta should still beat direct
	// (whose reverse path mirrors the pinned pacificwave artifact only
	// for uploads — here direct rides the fast peering, so just check
	// the grid is sane and slower for bigger files).
	for _, r := range g.Spec.Routes {
		s := g.Series(r)
		if s[1] <= s[0] {
			t.Fatalf("download series for %v not increasing: %v", r, s)
		}
	}
	if Download.String() != "download" || Upload.String() != "upload" {
		t.Fatal("direction strings")
	}
}

func TestDownloadGridSeedsProviderStore(t *testing.T) {
	w := scenario.Build(43)
	spec := smallSpec(scenario.Purdue, scenario.OneDrive)
	spec.Direction = Download
	RunGrid(w, spec)
	if w.Services[scenario.OneDrive].Store.Len() == 0 {
		t.Fatal("download grid left no seeded objects")
	}
}
