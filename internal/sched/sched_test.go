package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"detournet/internal/core"
	"detournet/internal/scenario"
)

// countingExec is a concurrency-observing fake executor: it tracks
// in-flight and peak transfers per provider and per DTN, so tests can
// assert the scheduler's caps from the executor's point of view — the
// side that would melt if the caps leaked.
type countingExec struct {
	mu          sync.Mutex
	provIn      map[string]int
	provPeak    map[string]int
	dtnIn       map[string]int
	dtnPeak     map[string]int
	calls       int
	hold        time.Duration
	fail        func(Job, core.Route) error
	transferSec float64
}

func newCountingExec(hold time.Duration) *countingExec {
	return &countingExec{
		provIn: map[string]int{}, provPeak: map[string]int{},
		dtnIn: map[string]int{}, dtnPeak: map[string]int{},
		hold: hold, transferSec: 1.5,
	}
}

func (e *countingExec) Execute(j Job, r core.Route) (float64, error) {
	e.mu.Lock()
	e.calls++
	e.provIn[j.Provider]++
	if e.provIn[j.Provider] > e.provPeak[j.Provider] {
		e.provPeak[j.Provider] = e.provIn[j.Provider]
	}
	if r.Kind == core.Detour {
		e.dtnIn[r.Via]++
		if e.dtnIn[r.Via] > e.dtnPeak[r.Via] {
			e.dtnPeak[r.Via] = e.dtnIn[r.Via]
		}
	}
	failFn := e.fail
	e.mu.Unlock()

	var err error
	if failFn != nil {
		err = failFn(j, r)
	}
	if e.hold > 0 {
		time.Sleep(e.hold)
	}

	e.mu.Lock()
	e.provIn[j.Provider]--
	if r.Kind == core.Detour {
		e.dtnIn[r.Via]--
	}
	e.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return e.transferSec, nil
}

func (e *countingExec) peaks() (map[string]int, map[string]int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := func(m map[string]int) map[string]int {
		out := map[string]int{}
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	return cp(e.provPeak), cp(e.dtnPeak)
}

// staticPlanner always picks the given route and counts its calls.
type staticPlanner struct {
	mu    sync.Mutex
	calls int
	route core.Route
}

func (p *staticPlanner) Plan(client, provider string, size float64) (core.Route, []core.Route, error) {
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	return p.route, []core.Route{core.DirectRoute, core.ViaRoute(scenario.UAlberta), core.ViaRoute(scenario.UMich)}, nil
}

func (p *staticPlanner) planCalls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// collector gathers results thread-safely.
type collector struct {
	mu      sync.Mutex
	results []Result
}

func (c *collector) add(r Result) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

func (c *collector) all() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Result(nil), c.results...)
}

var noSleep = func(float64) {}

// fleetJobs builds n jobs spread over 3 clients and 3 providers.
func fleetJobs(n int) []Job {
	clients := []string{scenario.UBC, scenario.Purdue, scenario.UCLA}
	providers := []string{scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Tenant:   clients[i%len(clients)],
			Client:   clients[i%len(clients)],
			Provider: providers[(i/3)%len(providers)],
			Name:     fmt.Sprintf("job-%04d.bin", i),
			Size:     float64(1+i%8) * 1e6,
			Priority: i % 3,
		}
	}
	return jobs
}

// TestDrainRespectsCaps is the headline fleet test: 600 jobs across 3
// clients and 3 providers drain through 64 workers while the executor
// never observes more than ProviderCap concurrent transfers per
// provider or DTNCap per DTN.
func TestDrainRespectsCaps(t *testing.T) {
	const jobs, provCap, dtnCap = 600, 3, 2
	exec := newCountingExec(200 * time.Microsecond)
	plan := &staticPlanner{route: core.ViaRoute(scenario.UAlberta)}
	var got collector
	s := New(Config{
		Workers: 64, Executor: exec, Planner: plan,
		ProviderCap: provCap, DTNCap: dtnCap,
		Sleep: noSleep, OnResult: got.add,
	})
	s.Start()
	for _, j := range fleetJobs(jobs) {
		if err := s.Submit(j); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	s.Drain()
	s.Close()

	st := s.Stats()
	if st.Done != jobs || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", st.Done, st.Failed, jobs)
	}
	if len(got.all()) != jobs {
		t.Fatalf("results delivered = %d, want %d", len(got.all()), jobs)
	}
	provPeak, dtnPeak := exec.peaks()
	if len(provPeak) != 3 {
		t.Fatalf("providers seen = %v, want 3", provPeak)
	}
	for prov, peak := range provPeak {
		if peak > provCap {
			t.Errorf("provider %s peak concurrency %d exceeds cap %d", prov, peak, provCap)
		}
	}
	for dtn, peak := range dtnPeak {
		if peak > dtnCap {
			t.Errorf("DTN %s peak concurrency %d exceeds cap %d", dtn, peak, dtnCap)
		}
	}
	// The scheduler's own high-water accounting must agree.
	for prov, peak := range st.ProviderPeak {
		if peak > provCap {
			t.Errorf("stats: provider %s peak %d exceeds cap %d", prov, peak, provCap)
		}
	}
	for dtn, peak := range st.DTNPeak {
		if peak > dtnCap {
			t.Errorf("stats: DTN %s peak %d exceeds cap %d", dtn, peak, dtnCap)
		}
	}
	// Per-route throughput aggregates cover all completed bytes.
	var bytes float64
	for _, rs := range st.PerRoute {
		bytes += rs.Bytes
		if rs.Throughput() <= 0 {
			t.Errorf("route stats missing throughput: %+v", rs)
		}
	}
	var want float64
	for _, j := range fleetJobs(jobs) {
		want += j.Size
	}
	if bytes != want {
		t.Errorf("per-route bytes = %g, want %g", bytes, want)
	}
}

// TestCacheAmortizesProbing floods repeated traffic at a handful of
// keys: after a sequential warm-up, ≥90% of jobs must ride cached
// decisions, and the planner must have probed at most once per key.
func TestCacheAmortizesProbing(t *testing.T) {
	exec := newCountingExec(50 * time.Microsecond)
	plan := &staticPlanner{route: core.ViaRoute(scenario.UAlberta)}
	s := New(Config{Workers: 8, Executor: exec, Planner: plan, Sleep: noSleep})
	s.Start()
	defer s.Close()

	keys := []struct{ client, provider string }{
		{scenario.UBC, scenario.GoogleDrive},
		{scenario.UBC, scenario.Dropbox},
		{scenario.Purdue, scenario.GoogleDrive},
		{scenario.UCLA, scenario.OneDrive},
	}
	mk := func(i int) Job {
		k := keys[i%len(keys)]
		return Job{Tenant: k.client, Client: k.client, Provider: k.provider,
			Name: fmt.Sprintf("rep-%04d.bin", i), Size: 2e6}
	}
	// Warm the cache: one job per key, sequentially.
	for i := 0; i < len(keys); i++ {
		if err := s.Submit(mk(i)); err != nil {
			t.Fatal(err)
		}
		s.Drain()
	}
	// Flood.
	const total = 200
	for i := len(keys); i < total; i++ {
		if err := s.Submit(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	st := s.Stats()
	if st.Done != total {
		t.Fatalf("done = %d, want %d", st.Done, total)
	}
	if hr := st.CacheHitRate(); hr < 0.9 {
		t.Errorf("cache hit rate = %.2f, want >= 0.90", hr)
	}
	if pc := plan.planCalls(); pc > len(keys) {
		t.Errorf("planner probed %d times for %d keys", pc, len(keys))
	}
}

// TestInvalidationOnFailure drives a cached detour into repeated DTN
// failure and watches the control plane (a) finish the job direct, and
// (b) flip the cached decision so followers skip the dead DTN without
// re-probing.
func TestInvalidationOnFailure(t *testing.T) {
	bad := core.ViaRoute(scenario.UAlberta)
	exec := newCountingExec(0)
	exec.fail = func(j Job, r core.Route) error {
		if r == bad {
			return errors.New("dtn unreachable")
		}
		return nil
	}
	plan := &staticPlanner{route: bad}
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: plan,
		MaxAttempts: 5, DetourFailLimit: 2,
		Sleep: noSleep, OnResult: got.add,
	})
	s.Start()
	defer s.Close()

	job := Job{Tenant: "t", Client: scenario.UBC, Provider: scenario.GoogleDrive, Name: "a.bin", Size: 2e6}
	if err := s.Submit(job); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	res := got.all()
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("first job should succeed after fallback: %+v", res)
	}
	if res[0].Route != core.DirectRoute {
		t.Fatalf("first job finished on %v, want Direct fallback", res[0].Route)
	}
	if res[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (2 detour failures + direct success)", res[0].Attempts)
	}
	if _, _, inv := s.Cache().Counters(); inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}

	// A follower on the same key must get the switched decision from
	// the cache: direct, no new probe, counted as a hit.
	job.Name = "b.bin"
	if err := s.Submit(job); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res = got.all()
	last := res[len(res)-1]
	if last.Err != nil || last.Route != core.DirectRoute || !last.CacheHit || last.Attempts != 1 {
		t.Fatalf("follower = %+v, want first-try direct cache hit", last)
	}
	if pc := plan.planCalls(); pc != 1 {
		t.Errorf("planner calls = %d, want 1 (invalidation must not force re-probe)", pc)
	}
	st := s.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestPriorityOrdering submits mixed-priority jobs before starting the
// single worker: completion order must be priority-descending, FIFO
// within a level.
func TestPriorityOrdering(t *testing.T) {
	exec := newCountingExec(0)
	plan := &staticPlanner{route: core.DirectRoute}
	var got collector
	s := New(Config{Workers: 1, Executor: exec, Planner: plan, Sleep: noSleep, OnResult: got.add})

	names := map[int][]string{}
	for i := 0; i < 9; i++ {
		prio := i % 3
		name := fmt.Sprintf("p%d-%d.bin", prio, i)
		names[prio] = append(names[prio], name)
		if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p",
			Name: name, Size: 1e6, Priority: prio}); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	s.Drain()
	s.Close()

	var want []string
	for prio := 2; prio >= 0; prio-- {
		want = append(want, names[prio]...)
	}
	res := got.all()
	if len(res) != len(want) {
		t.Fatalf("results = %d, want %d", len(res), len(want))
	}
	for i, r := range res {
		if r.Job.Name != want[i] {
			t.Fatalf("completion order[%d] = %s, want %s (full: %v)", i, r.Job.Name, want[i], res)
		}
	}
}

// TestTenantRateLimit checks bucket admission: burst admits, the next
// submit bounces, and refill (on the fake clock) re-admits.
func TestTenantRateLimit(t *testing.T) {
	var mu sync.Mutex
	clock := 0.0
	now := func() float64 { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d float64) { mu.Lock(); clock += d; mu.Unlock() }

	exec := newCountingExec(0)
	plan := &staticPlanner{route: core.DirectRoute}
	s := New(Config{
		Workers: 2, Executor: exec, Planner: plan,
		TenantRate: 1, TenantBurst: 3, Now: now, Sleep: noSleep,
	})
	s.Start()
	defer s.Close()

	mk := func(i int) Job {
		return Job{Tenant: "alice", Client: "c", Provider: "p", Name: fmt.Sprintf("r%d.bin", i), Size: 1e6}
	}
	for i := 0; i < 3; i++ {
		if err := s.Submit(mk(i)); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	if err := s.Submit(mk(3)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("4th submit err = %v, want ErrRateLimited", err)
	}
	// Another tenant is unaffected.
	if err := s.Submit(Job{Tenant: "bob", Client: "c", Provider: "p", Name: "bob.bin", Size: 1e6}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	advance(2) // 2 seconds at 1 job/sec refills 2 tokens
	for i := 4; i < 6; i++ {
		if err := s.Submit(mk(i)); err != nil {
			t.Fatalf("post-refill submit %d: %v", i, err)
		}
	}
	if err := s.Submit(mk(6)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("exhausted again err = %v, want ErrRateLimited", err)
	}
	s.Drain()
	if st := s.Stats(); st.RateLimited != 2 {
		t.Errorf("rate-limited = %d, want 2", st.RateLimited)
	}
}

// TestDeadlineExpiry: a job whose deadline already passed is dropped
// with ErrDeadline, not executed.
func TestDeadlineExpiry(t *testing.T) {
	clock := 100.0
	exec := newCountingExec(0)
	plan := &staticPlanner{route: core.DirectRoute}
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: plan,
		Now: func() float64 { return clock }, Sleep: noSleep, OnResult: got.add,
	})
	s.Start()
	defer s.Close()

	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p",
		Name: "late.bin", Size: 1e6, Deadline: 50}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || !errors.Is(res[0].Err, ErrDeadline) {
		t.Fatalf("result = %+v, want ErrDeadline", res)
	}
	if exec.calls != 0 {
		t.Errorf("executor ran %d times for an expired job", exec.calls)
	}
	if st := s.Stats(); st.Expired != 1 || st.Failed != 0 {
		t.Errorf("expired=%d failed=%d, want 1/0", st.Expired, st.Failed)
	}
}

// TestRetryBackoff: transient failures retry with growing, capped
// delays and eventually succeed; the delays pass through Config.Sleep.
func TestRetryBackoff(t *testing.T) {
	var failures int
	var mu sync.Mutex
	exec := newCountingExec(0)
	exec.fail = func(j Job, r core.Route) error {
		mu.Lock()
		defer mu.Unlock()
		if failures < 2 {
			failures++
			return errors.New("transient")
		}
		return nil
	}
	var delays []float64
	plan := &staticPlanner{route: core.DirectRoute}
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: plan, MaxAttempts: 4,
		Backoff: Backoff{Base: 0.1, Max: 10, Factor: 2, Jitter: 0.5},
		Sleep:   func(sec float64) { delays = append(delays, sec) },
		OnResult: got.add,
	})
	s.Start()
	defer s.Close()

	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "flaky.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || res[0].Err != nil || res[0].Attempts != 3 {
		t.Fatalf("result = %+v, want success on attempt 3", res)
	}
	if len(delays) != 2 {
		t.Fatalf("sleeps = %v, want 2", delays)
	}
	// With Jitter 0.5, delay(n) ∈ (base·2ⁿ⁻¹/2, base·2ⁿ⁻¹].
	if delays[0] <= 0.05 || delays[0] > 0.1 {
		t.Errorf("first delay %v outside (0.05, 0.1]", delays[0])
	}
	if delays[1] <= 0.1 || delays[1] > 0.2 {
		t.Errorf("second delay %v outside (0.1, 0.2]", delays[1])
	}
	if st := s.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

// TestPermanentFailure: a job that keeps failing exhausts MaxAttempts
// and surfaces the last error.
func TestPermanentFailure(t *testing.T) {
	boom := errors.New("provider 500")
	exec := newCountingExec(0)
	exec.fail = func(Job, core.Route) error { return boom }
	plan := &staticPlanner{route: core.DirectRoute}
	var got collector
	s := New(Config{Workers: 1, Executor: exec, Planner: plan, MaxAttempts: 3, Sleep: noSleep, OnResult: got.add})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "dead.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	res := got.all()
	if len(res) != 1 || !errors.Is(res[0].Err, boom) || res[0].Attempts != 3 {
		t.Fatalf("result = %+v, want boom after 3 attempts", res)
	}
	if st := s.Stats(); st.Failed != 1 || st.Done != 0 {
		t.Errorf("failed=%d done=%d, want 1/0", st.Failed, st.Done)
	}
}

// TestSubmitValidation rejects malformed jobs and post-Close submits.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, Executor: newCountingExec(0), Planner: &staticPlanner{route: core.DirectRoute}, Sleep: noSleep})
	s.Start()
	if err := s.Submit(Job{Client: "c", Provider: "p", Name: "x", Size: 1}); err == nil {
		t.Error("missing tenant accepted")
	}
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "x", Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
	s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "x", Size: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestCloseFailsQueuedJobs: Close with work still queued fails the
// leftovers with ErrClosed instead of stranding them.
func TestCloseFailsQueuedJobs(t *testing.T) {
	exec := newCountingExec(5 * time.Millisecond)
	plan := &staticPlanner{route: core.DirectRoute}
	var got collector
	s := New(Config{Workers: 1, Executor: exec, Planner: plan, Sleep: noSleep, OnResult: got.add})
	for i := 0; i < 10; i++ {
		if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p",
			Name: fmt.Sprintf("q%d.bin", i), Size: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	time.Sleep(2 * time.Millisecond) // let the worker grab one
	s.Close()
	res := got.all()
	if len(res) != 10 {
		t.Fatalf("results = %d, want 10 (every admitted job must terminate)", len(res))
	}
	var closedErrs int
	for _, r := range res {
		if errors.Is(r.Err, ErrClosed) {
			closedErrs++
		}
	}
	if closedErrs == 0 {
		t.Error("expected some jobs to fail with ErrClosed")
	}
	s.Drain() // must not hang after Close
}

// TestBackoffDelayShape pins the curve: exponential growth, cap, and
// jitter bounds.
func TestBackoffDelayShape(t *testing.T) {
	b := Backoff{Base: 0.1, Max: 1, Factor: 2, Jitter: 0.5}.withDefaults()
	if d := b.Delay(1, 0); d != 0.1 {
		t.Errorf("Delay(1,0) = %v, want 0.1", d)
	}
	if d := b.Delay(3, 0); d != 0.4 {
		t.Errorf("Delay(3,0) = %v, want 0.4", d)
	}
	if d := b.Delay(10, 0); d != 1 {
		t.Errorf("Delay(10,0) = %v, want capped at 1", d)
	}
	if d := b.Delay(1, 0.999); d < 0.05 || d >= 0.1 {
		t.Errorf("jittered Delay(1) = %v, want in [0.05, 0.1)", d)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d := b.Delay(4, rng.Float64())
		if d <= 0.4 || d > 0.8 {
			t.Fatalf("Delay(4) = %v outside (0.4, 0.8]", d)
		}
	}
}

// TestSchedulerStress hammers one scheduler from many submitters while
// workers drain — the shape the race detector is here for.
func TestSchedulerStress(t *testing.T) {
	exec := newCountingExec(20 * time.Microsecond)
	plan := &staticPlanner{route: core.ViaRoute(scenario.UMich)}
	s := New(Config{Workers: 16, Executor: exec, Planner: plan, Sleep: noSleep})
	s.Start()
	var wg sync.WaitGroup
	const submitters, each = 8, 50
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_ = s.Submit(Job{
					Tenant: fmt.Sprintf("t%d", g), Client: scenario.UBC,
					Provider: scenario.GoogleDrive,
					Name:     fmt.Sprintf("s%d-%d.bin", g, i),
					Size:     1e6, Priority: i % 3,
				})
				_ = s.Stats() // concurrent snapshots must be safe
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	s.Close()
	st := s.Stats()
	if st.Done != submitters*each {
		t.Fatalf("done = %d, want %d", st.Done, submitters*each)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("drained scheduler still shows queued=%d running=%d", st.Queued, st.Running)
	}
}
