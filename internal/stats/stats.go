// Package stats provides the small statistical toolkit used by the
// measurement harness: means, sample standard deviations, confidence
// half-widths, and the paper's "mean of the last five of seven runs"
// estimator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It panics on an empty slice:
// every call site has a fixed, known-positive run count, so an empty
// input is a harness bug.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// A single observation has zero deviation by convention.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: StdDev of empty slice")
	}
	if len(xs) == 1 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest element of xs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the exact q-quantile of xs (0 <= q <= 1) without
// mutating it, using linear interpolation between closest ranks (the
// R-7 / spreadsheet convention): Quantile(xs, 0.5) == Median(xs).
// "Exact" is in contrast to streaming estimators — the whole sample is
// sorted, so repeated calls on the same data are bit-identical, which
// the multipath straggler detector relies on for deterministic replays.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile with q=%v outside [0,1]", q))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// JainFairness returns Jain's fairness index over xs:
// (Σx)² / (n·Σx²). It is 1 when every element is equal, 1/n when one
// element holds everything, and scale-invariant in between — the
// standard way to score how evenly K paths split a striped transfer.
// An all-zero sample is perfectly fair by convention.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: JainFairness of empty slice")
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			panic("stats: JainFairness with negative share")
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// EWMA is an exponentially weighted moving average — the streaming
// baseline estimator the health layer keeps per route/DTN/provider.
// The zero value is unusable; construct with NewEWMA. The first
// observation seeds the average directly (matching the bandit's
// convention) so a single sample is already a usable baseline.
type EWMA struct {
	alpha float64
	v     float64
	n     int
}

// NewEWMA returns an EWMA with the given smoothing factor (0 < alpha
// <= 1; larger tracks faster).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Count returns how many samples have been folded in.
func (e *EWMA) Count() int { return e.n }

// Summary holds the statistics the paper reports for one measurement
// cell: the mean of the retained runs and one standard deviation.
type Summary struct {
	Mean   float64
	StdDev float64
	N      int // retained runs
}

// LastN returns the estimator used throughout the paper: discard the
// first len(xs)-n warm-up runs and summarize the final n. If xs has at
// most n elements every run is retained.
func LastN(xs []float64, n int) Summary {
	if n <= 0 {
		panic("stats: LastN with n <= 0")
	}
	if len(xs) == 0 {
		panic("stats: LastN of empty slice")
	}
	if len(xs) > n {
		xs = xs[len(xs)-n:]
	}
	return Summary{Mean: Mean(xs), StdDev: StdDev(xs), N: len(xs)}
}

// PaperSummary applies the paper's exact protocol: seven runs, mean and
// standard deviation of the last five.
func PaperSummary(runs []float64) Summary { return LastN(runs, 5) }

// RelativeChange returns the percentage change of x versus base, the
// quantity printed in square brackets in Tables II and III (negative
// means x is faster/smaller than base).
func RelativeChange(base, x float64) float64 {
	if base == 0 {
		panic("stats: RelativeChange with zero base")
	}
	return (x - base) / base * 100
}

// FormatRelative renders a relative change the way the paper prints it,
// e.g. "-31.52%" or "+62.95%".
func FormatRelative(pct float64) string {
	return fmt.Sprintf("%+.2f%%", pct)
}

// Interval returns the ±1σ interval [Mean-StdDev, Mean+StdDev] that the
// paper uses for error bars and the Table IV overlap argument.
func (s Summary) Interval() (lo, hi float64) {
	return s.Mean - s.StdDev, s.Mean + s.StdDev
}

// Overlaps reports whether the ±1σ intervals of two summaries intersect —
// the paper's criterion for "statistically unsure benefit" (Sec III-B).
func (s Summary) Overlaps(o Summary) bool {
	slo, shi := s.Interval()
	olo, ohi := o.Interval()
	return slo <= ohi && olo <= shi
}
