package sched

import (
	"sync"
	"testing"

	"detournet/internal/core"
	"detournet/internal/httpsim"
)

// retryAfterSchedRun submits one job whose first attempt fails with the
// given error and returns the backoff sleeps the scheduler took.
func retryAfterSchedRun(t *testing.T, failErr error) []float64 {
	t.Helper()
	var mu sync.Mutex
	var failed bool
	exec := newCountingExec(0)
	exec.fail = func(Job, core.Route) error {
		mu.Lock()
		defer mu.Unlock()
		if !failed {
			failed = true
			return failErr
		}
		return nil
	}
	var delays []float64
	var got collector
	s := New(Config{
		Workers: 1, Executor: exec, Planner: &staticPlanner{route: core.DirectRoute},
		MaxAttempts: 3,
		// A deliberately tiny backoff curve, so any delay near the hint
		// provably came from the Retry-After floor and not the curve.
		Backoff:  Backoff{Base: 0.01, Max: 0.02, Factor: 2, Jitter: 0.5},
		Sleep:    func(sec float64) { delays = append(delays, sec) },
		OnResult: got.add,
	})
	s.Start()
	defer s.Close()
	if err := s.Submit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "throttled.bin", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if res := got.all(); len(res) != 1 || res[0].Err != nil {
		t.Fatalf("result = %+v, want one success", res)
	}
	return delays
}

// TestRetryAfterFloorsBackoff: a provider 429 carrying Retry-After
// floors the retry delay at the hint — backing off into the same
// throttle window just burns an attempt.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	delays := retryAfterSchedRun(t, Transient(&httpsim.StatusError{
		Status: httpsim.StatusTooManyRequests, RetryAfter: 5,
	}))
	if len(delays) != 1 || delays[0] != 5 {
		t.Fatalf("sleeps = %v, want exactly [5] (the Retry-After hint)", delays)
	}
}

// TestRetryAfterFloorCapped: a pathological Retry-After cannot park a
// worker for minutes — the floor caps at maxRetryAfterFloor.
func TestRetryAfterFloorCapped(t *testing.T) {
	delays := retryAfterSchedRun(t, Transient(&httpsim.StatusError{
		Status: httpsim.StatusTooManyRequests, RetryAfter: 9000,
	}))
	if len(delays) != 1 || delays[0] != maxRetryAfterFloor {
		t.Fatalf("sleeps = %v, want [%v] (capped hint)", delays, float64(maxRetryAfterFloor))
	}
}

// TestRetryAfterIgnoredForOtherErrors: the floor only honors a 429's
// hint; a plain 500 keeps the configured backoff curve.
func TestRetryAfterIgnoredForOtherErrors(t *testing.T) {
	delays := retryAfterSchedRun(t, Transient(&httpsim.StatusError{
		Status: httpsim.StatusInternalServerError, RetryAfter: 30,
	}))
	if len(delays) != 1 || delays[0] > 0.02 {
		t.Fatalf("sleeps = %v, want one curve-sized delay (<= 0.02)", delays)
	}
}
