package oauthsim

import (
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/httpsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

type fixture struct {
	eng  *simclock.Engine
	r    *simproc.Runner
	tn   *transport.Net
	auth *AuthServer
	l    *transport.Listener
}

func setup(t *testing.T) *fixture {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	g.MustAddNode(&topology.Node{Name: "client", Kind: topology.Host, RespondsICMP: true})
	g.MustAddNode(&topology.Node{Name: "api", Kind: topology.Host, RespondsICMP: true})
	g.MustConnect("client", "api", topology.LinkSpec{CapacityBps: 10e6, DelaySec: 0.020})
	tn := transport.NewNet(g, r, tcpmodel.Params{})
	auth := NewAuthServer(eng)
	srv := httpsim.NewServer(tn)
	auth.Mount(srv)
	srv.Handle("GET", "/private", auth.Protect(func(ctx *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
		return &httpsim.Response{Status: httpsim.StatusOK, Body: []byte("secret")}
	}))
	l := tn.MustListen("api", 443)
	srv.Serve(l)
	return &fixture{eng: eng, r: r, tn: tn, auth: auth, l: l}
}

func (f *fixture) run(t *testing.T, fn func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource)) {
	t.Helper()
	rt := f.auth.RegisterClient("app", "s3cret")
	f.r.Go("test", func(p *simproc.Proc) {
		c := httpsim.NewClient(f.tn, "client", 443, true)
		ts := NewTokenSource(f.eng, c, "api", "app", "s3cret", rt)
		fn(p, c, ts)
		c.CloseIdle()
		f.l.Close()
	})
	f.r.Run()
}

func TestTokenFetchAndUse(t *testing.T) {
	f := setup(t)
	f.run(t, func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource) {
		hdr, err := ts.AuthHeader(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(hdr, "Bearer at-") {
			t.Fatalf("header = %q", hdr)
		}
		resp, err := c.Do(p, &httpsim.Request{Method: "GET", Path: "/private", Host: "api",
			Header: map[string]string{"Authorization": hdr}})
		if err != nil || resp.Status != httpsim.StatusOK {
			t.Fatalf("protected call: %v %v", resp, err)
		}
	})
}

func TestTokenCached(t *testing.T) {
	f := setup(t)
	f.run(t, func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource) {
		t1, _ := ts.Token(p)
		t2, _ := ts.Token(p)
		if t1 != t2 {
			t.Fatalf("token not cached: %q vs %q", t1, t2)
		}
		if ts.Fetches != 1 {
			t.Fatalf("Fetches = %d, want 1", ts.Fetches)
		}
	})
}

func TestTokenRefreshAfterExpiry(t *testing.T) {
	f := setup(t)
	f.auth.TTL = 100
	f.run(t, func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource) {
		t1, _ := ts.Token(p)
		p.Sleep(200)
		t2, err := ts.Token(p)
		if err != nil {
			t.Fatal(err)
		}
		if t1 == t2 {
			t.Fatal("expired token not refreshed")
		}
		if ts.Fetches != 2 {
			t.Fatalf("Fetches = %d, want 2", ts.Fetches)
		}
	})
}

func TestExpiredTokenRejectedServerSide(t *testing.T) {
	f := setup(t)
	f.auth.TTL = 50
	f.run(t, func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource) {
		hdr, _ := ts.AuthHeader(p)
		p.Sleep(100)
		resp, err := c.Do(p, &httpsim.Request{Method: "GET", Path: "/private", Host: "api",
			Header: map[string]string{"Authorization": hdr}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpsim.StatusUnauthorized {
			t.Fatalf("stale token got status %d", resp.Status)
		}
	})
}

func TestBadCredentials(t *testing.T) {
	f := setup(t)
	f.auth.RegisterClient("app", "s3cret")
	f.r.Go("test", func(p *simproc.Proc) {
		c := httpsim.NewClient(f.tn, "client", 443, true)
		defer func() { c.CloseIdle(); f.l.Close() }()
		// Wrong secret.
		ts := NewTokenSource(f.eng, c, "api", "app", "wrong", "rt-app-0")
		if _, err := ts.Token(p); err == nil || !strings.Contains(err.Error(), "invalid_client") {
			t.Errorf("wrong secret: %v", err)
		}
		// Wrong refresh token.
		ts2 := NewTokenSource(f.eng, c, "api", "app", "s3cret", "bogus")
		if _, err := ts2.Token(p); err == nil || !strings.Contains(err.Error(), "invalid_grant") {
			t.Errorf("bogus refresh token: %v", err)
		}
	})
	f.r.Run()
}

func TestValidateRejectsGarbage(t *testing.T) {
	f := setup(t)
	if _, err := f.auth.Validate("Basic dXNlcg=="); err == nil {
		t.Fatal("non-bearer accepted")
	}
	if _, err := f.auth.Validate("Bearer nonexistent"); err == nil {
		t.Fatal("unknown token accepted")
	}
	f.l.Close()
	f.r.Run()
}

func TestMissingAuthHeaderRejected(t *testing.T) {
	f := setup(t)
	f.r.Go("test", func(p *simproc.Proc) {
		c := httpsim.NewClient(f.tn, "client", 443, true)
		resp, err := c.Do(p, &httpsim.Request{Method: "GET", Path: "/private", Host: "api"})
		if err != nil {
			t.Error(err)
		} else if resp.Status != httpsim.StatusUnauthorized {
			t.Errorf("status = %d", resp.Status)
		}
		c.CloseIdle()
		f.l.Close()
	})
	f.r.Run()
}

func TestUnsupportedGrantType(t *testing.T) {
	f := setup(t)
	f.r.Go("test", func(p *simproc.Proc) {
		c := httpsim.NewClient(f.tn, "client", 443, true)
		resp, err := c.Do(p, &httpsim.Request{Method: "POST", Path: TokenPath, Host: "api",
			Body: []byte("grant_type=password&username=u&password=p")})
		if err != nil {
			t.Error(err)
		} else if resp.Status != httpsim.StatusBadRequest || !strings.Contains(string(resp.Body), "unsupported_grant_type") {
			t.Errorf("resp = %d %s", resp.Status, resp.Body)
		}
		c.CloseIdle()
		f.l.Close()
	})
	f.r.Run()
}

func TestTokensAreUniqueAndIsolated(t *testing.T) {
	f := setup(t)
	rt1 := f.auth.RegisterClient("app1", "s1")
	rt2 := f.auth.RegisterClient("app2", "s2")
	f.r.Go("test", func(p *simproc.Proc) {
		defer f.l.Close()
		c := httpsim.NewClient(f.tn, "client", 443, true)
		defer c.CloseIdle()
		ts1 := NewTokenSource(f.eng, c, "api", "app1", "s1", rt1)
		ts2 := NewTokenSource(f.eng, c, "api", "app2", "s2", rt2)
		t1, err := ts1.Token(p)
		if err != nil {
			t.Error(err)
			return
		}
		t2, err := ts2.Token(p)
		if err != nil {
			t.Error(err)
			return
		}
		if t1 == t2 {
			t.Error("two clients issued the same token")
		}
		// Each token validates to its own client id.
		if id, _ := f.auth.Validate("Bearer " + t1); id != "app1" {
			t.Errorf("t1 validates to %q", id)
		}
		if id, _ := f.auth.Validate("Bearer " + t2); id != "app2" {
			t.Errorf("t2 validates to %q", id)
		}
		// A second refresh token for the same client also works.
		rt1b := f.auth.RegisterClient("app1", "s1")
		ts1b := NewTokenSource(f.eng, c, "api", "app1", "s1", rt1b)
		if _, err := ts1b.Token(p); err != nil {
			t.Errorf("second refresh token rejected: %v", err)
		}
	})
	f.r.Run()
}

func TestSkewTriggersEarlyRefresh(t *testing.T) {
	f := setup(t)
	f.auth.TTL = 100
	f.run(t, func(p *simproc.Proc, c *httpsim.Client, ts *TokenSource) {
		ts.Skew = 50
		t1, _ := ts.Token(p)
		p.Sleep(60) // within TTL but inside the skew window
		t2, _ := ts.Token(p)
		if t1 == t2 {
			t.Error("token not refreshed inside skew window")
		}
	})
}
