// Pressure: the storage-exhaustion schedule replayed twice over the
// same fleet and seed — once as the ablation (no eviction, no capacity
// oracle, a reclaim pass that frees nothing, no spill targets) and
// once with the full mitigation ladder: LRU eviction of stale staged
// state, spill-aware placement that steers detours away from
// nearly-full DTNs, provider-session reclamation on the first 507,
// spill to alternate providers, and journal degradation to in-memory
// folding when the log device fills. The report contrasts goodput and
// dumps the final staging-disk and quota accounting; output is
// byte-identical per seed, which `make check` verifies by running this
// program twice.
package main

import (
	"flag"
	"os"

	"detournet/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 2015, "world/fault seed")
	jobs := flag.Int("jobs", 60, "transfers in the fleet")
	flag.Parse()

	control := sched.RunPressure(sched.PressureOptions{Seed: *seed, Jobs: *jobs, Stack: false})
	stack := sched.RunPressure(sched.PressureOptions{Seed: *seed, Jobs: *jobs, Stack: true})
	sched.WritePressureReport(os.Stdout, control, stack)
}
