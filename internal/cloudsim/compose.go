package cloudsim

import (
	"encoding/json"
	"strings"

	"detournet/internal/httpsim"
)

// Server-side compose: concatenate previously uploaded part objects, in
// the order given, into one final object — the commit step of a striped
// multipath upload. The 2015-era consumer APIs this simulator models
// did not expose compose (GCS had Objects.compose, the consumer
// products did not); it is modeled here as the minimal control-plane
// extension a multipath data plane needs, identical in semantics across
// the three styles and mounted under each provider's path flavor:
//
//	Google Drive: POST /drive/v3/files:compose
//	Dropbox:      POST /2/files/compose
//	OneDrive:     POST /v1.0/drive/compose
//
// Body: {"name": ..., "md5": ..., "parts": ["part0", "part1", ...]}.
// Every part must exist; the final size is the sum of part sizes; the
// md5 is the client's whole-file digest (echoed into the stored
// metadata exactly like the X-Content-MD5 header on uploads). Parts are
// deleted on success — compose is a move, not a copy, so the quota
// accounting stays flat.
type composeReq struct {
	Name  string   `json:"name"`
	MD5   string   `json:"md5,omitempty"`
	Parts []string `json:"parts"`
}

func (s *Service) mountCompose() {
	var path string
	switch s.Style {
	case GoogleDrive:
		path = "/drive/v3/files:compose"
	case Dropbox:
		path = "/2/files/compose"
	default:
		path = "/v1.0/drive/compose"
	}
	s.HTTP.Handle("POST", path, s.protect(s.compose))
}

func (s *Service) compose(_ *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
	var cr composeReq
	if err := json.Unmarshal(req.Body, &cr); err != nil || cr.Name == "" || len(cr.Parts) == 0 {
		return errResp(httpsim.StatusBadRequest, "compose needs a name and at least one part")
	}
	// Idempotent replay: a crash between a committed compose and its
	// journal record re-issues the same attempt, whose parts are gone —
	// answer with the object the first commit produced.
	if key := req.Header["X-Attempt-Id"]; key != "" {
		if o, ok := s.Store.Replayed(key, cr.Name); ok {
			status := httpsim.StatusOK
			if s.Style == OneDrive {
				status = httpsim.StatusCreated
			}
			return jsonResp(status, metaOf(o))
		}
	}
	var total float64
	parts := make([]*Object, 0, len(cr.Parts))
	seen := make(map[string]bool, len(cr.Parts))
	for _, part := range cr.Parts {
		if seen[part] {
			return errResp(httpsim.StatusBadRequest, "duplicate part "+part)
		}
		seen[part] = true
		o, ok := s.Store.Get(part)
		if !ok {
			return errResp(httpsim.StatusNotFound, "missing part "+part)
		}
		total += o.Size
		parts = append(parts, o)
	}
	// The commit must be atomic from the client's view: the parts are
	// the client's only copy of the uploaded bytes, so nothing may be
	// deleted until the final Put is known to fit. Mirror Put's quota
	// check against the post-compose usage (parts freed, any object the
	// final name replaces freed, final object added) and reject while
	// the parts are still intact — a failed compose stays retryable.
	if q := s.Store.Quota; q > 0 {
		freed := total
		if old, ok := s.Store.Get(cr.Name); ok && !seen[cr.Name] {
			freed += old.Size
		}
		if s.Store.Used()-freed+total > q {
			return s.insufficientStorage(ErrQuotaExceeded.Error())
		}
	}
	// Free the parts before the final Put so a quota-bound store does
	// not double-count the bytes mid-compose.
	for _, part := range cr.Parts {
		s.Store.Delete(part)
	}
	o, err := s.Store.Put(cr.Name, total, cr.MD5)
	if err != nil {
		// Roll back: every part goes back exactly as it was. Restore
		// (not Put) preserves object identity and commit counts, so the
		// failed compose cannot over-report reclaimed space or inflate
		// per-name commit tallies; and every part is attempted even if
		// one fails, so a partial rollback never silently drops the rest.
		var lost []string
		for _, p := range parts {
			if rerr := s.Store.Restore(p); rerr != nil {
				lost = append(lost, p.Name)
			}
		}
		if len(lost) > 0 {
			return errResp(httpsim.StatusInternalServerError,
				"compose failed and parts could not be restored: "+strings.Join(lost, ", "))
		}
		return s.putErr(err)
	}
	s.Store.RecordAttempt(req.Header["X-Attempt-Id"], o)
	status := httpsim.StatusOK
	if s.Style == OneDrive {
		status = httpsim.StatusCreated
	}
	return jsonResp(status, metaOf(o))
}
