// Package cloudsim emulates the three cloud-storage services of the case
// study — Google Drive, Dropbox, and Microsoft OneDrive — as HTTP
// services over the simulated WAN. Each provider exposes its own 2015-era
// REST upload protocol (resumable session + single PUT for Drive, 4 MiB
// upload_session chunks for Dropbox, 10 MiB Content-Range fragments for
// OneDrive), all protected by OAuth2 bearer tokens, all backed by an
// in-memory object store at the provider's datacenter.
//
// The protocol differences matter to the paper's results: chunkier
// protocols pay more request round trips per file, which is part of why
// detour benefit is provider- and file-size-dependent.
package cloudsim

import (
	"fmt"
	"sort"

	"detournet/internal/simclock"
)

// Object is one stored file.
type Object struct {
	ID       string
	Name     string
	Size     float64
	MD5      string // hex digest when content bytes were provided
	Modified simclock.Time
}

// ObjectStore is an in-memory bucket, keyed by name (paths are names
// here) with stable generated IDs.
type ObjectStore struct {
	eng    *simclock.Engine
	byName map[string]*Object
	byID   map[string]*Object
	nextID int
	// Quota caps total stored bytes; zero means unlimited.
	Quota float64
	used  float64
	// attempts maps an idempotency key (X-Attempt-Id) to the object its
	// commit produced, so a replayed commit of the same attempt returns
	// the stored object instead of materializing a duplicate.
	attempts map[string]*Object
	// commits counts materializing commits per name — the crash-replay
	// harness asserts exactly one per object.
	commits map[string]int
	// dupSuppressed counts commits answered from the attempts table.
	dupSuppressed int
}

// NewObjectStore returns an empty store on the clock.
func NewObjectStore(eng *simclock.Engine) *ObjectStore {
	if eng == nil {
		panic("cloudsim: nil engine")
	}
	return &ObjectStore{
		eng: eng, byName: make(map[string]*Object), byID: make(map[string]*Object),
		attempts: make(map[string]*Object), commits: make(map[string]int),
	}
}

// Put stores (or replaces) an object by name. md5 may be empty when the
// content was never materialized.
func (s *ObjectStore) Put(name string, size float64, md5 string) (*Object, error) {
	if name == "" {
		return nil, fmt.Errorf("cloudsim: empty object name")
	}
	if size < 0 {
		return nil, fmt.Errorf("cloudsim: negative size")
	}
	var prev float64
	if old, ok := s.byName[name]; ok {
		prev = old.Size
	}
	if s.Quota > 0 && s.used-prev+size > s.Quota {
		return nil, fmt.Errorf("cloudsim: quota exceeded")
	}
	if old, ok := s.byName[name]; ok {
		s.used -= old.Size
		delete(s.byID, old.ID)
	}
	o := &Object{
		ID:       fmt.Sprintf("f-%d", s.nextID),
		Name:     name,
		Size:     size,
		MD5:      md5,
		Modified: s.eng.Now(),
	}
	s.nextID++
	s.byName[name] = o
	s.byID[o.ID] = o
	s.used += size
	s.commits[name]++
	return o, nil
}

// PutIdempotent stores an object like Put, gated by an idempotency key:
// when a commit with the same non-empty key already produced an object
// that is still stored, that object is returned unchanged and no second
// commit is materialized — how a crash-replayed upload attempt avoids
// double-committing. An empty key degrades to a plain Put.
func (s *ObjectStore) PutIdempotent(name string, size float64, md5, key string) (*Object, error) {
	if key != "" {
		if o, ok := s.Replayed(key, name); ok {
			return o, nil
		}
	}
	o, err := s.Put(name, size, md5)
	if err != nil {
		return nil, err
	}
	if key != "" {
		s.attempts[key] = o
	}
	return o, nil
}

// Replayed answers an idempotent replay without a Put: it returns the
// object a previous commit with this key produced, provided it is still
// the stored object under name.
func (s *ObjectStore) Replayed(key, name string) (*Object, bool) {
	o, ok := s.attempts[key]
	if ok && o.Name == name && s.byName[name] == o {
		s.dupSuppressed++
		return o, true
	}
	return nil, false
}

// RecordAttempt associates an idempotency key with an already-stored
// object (compose commits record themselves after their multi-step
// Put).
func (s *ObjectStore) RecordAttempt(key string, o *Object) {
	if key != "" && o != nil {
		s.attempts[key] = o
	}
}

// Commits returns how many materializing commits name has received.
func (s *ObjectStore) Commits(name string) int { return s.commits[name] }

// DuplicatesSuppressed returns how many commits were answered from the
// idempotency table instead of materializing again.
func (s *ObjectStore) DuplicatesSuppressed() int { return s.dupSuppressed }

// Get returns an object by name.
func (s *ObjectStore) Get(name string) (*Object, bool) {
	o, ok := s.byName[name]
	return o, ok
}

// GetByID returns an object by ID.
func (s *ObjectStore) GetByID(id string) (*Object, bool) {
	o, ok := s.byID[id]
	return o, ok
}

// Delete removes an object by name, reporting whether it existed. The
// paper deletes staged files before every run; the DTN relay calls this.
func (s *ObjectStore) Delete(name string) bool {
	o, ok := s.byName[name]
	if !ok {
		return false
	}
	s.used -= o.Size
	delete(s.byName, name)
	delete(s.byID, o.ID)
	return true
}

// List returns all objects sorted by name.
func (s *ObjectStore) List() []*Object {
	out := make([]*Object, 0, len(s.byName))
	for _, o := range s.byName {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored objects.
func (s *ObjectStore) Len() int { return len(s.byName) }

// Used returns the total stored bytes.
func (s *ObjectStore) Used() float64 { return s.used }
