// Telemetry: the observability plane watching a flash crowd ride out
// the BGP reconvergence storm. One instrumented replay drives ~40
// transfers through a deliberately thin scheduler stack (one retry, a
// short park budget) while the full telemetry plane records it: a
// metrics registry counts every election, retry, reroute, park, and
// failure class; a virtual-clock sampler captures per-window time
// series (link utilization on the paper's key hand-offs, queue depth,
// DTN staging fill, provider quota headroom, journal size, active
// flows); and a per-job flight recorder keeps the complete decision
// trace of every transfer that fails — election, attempts, reroutes,
// parks, and the classified error at each hop — while truncating the
// traces of jobs that succeed.
//
// The program prints a compact telemetry line every -dump-every virtual
// seconds as the drain runs, then the operator dashboard (sparklines),
// then the full report: headline stats, every time series, the failed
// jobs' decision traces event by event, and the Prometheus text dump.
// Output is byte-identical per seed — the whole plane rides the virtual
// clock — which `make check` verifies by running this program twice.
package main

import (
	"flag"
	"fmt"
	"os"

	"detournet/internal/sched"
)

func main() {
	// Seed 7 is the committed default: under the storm it fails exactly
	// one transfer, so the report always includes a complete failed-job
	// decision trace (the default evaluation seed 2015 drains clean).
	seed := flag.Int64("seed", 7, "world/fault/fleet seed")
	jobs := flag.Int("jobs", 40, "transfers in the flash crowd")
	dumpEvery := flag.Float64("dump-every", 120, "virtual seconds between live telemetry lines (0 = quiet)")
	flag.Parse()

	fmt.Println("== live telemetry ==")
	o := sched.RunTelemetry(sched.TelemetryOptions{
		Seed: *seed, Jobs: *jobs,
		DumpEvery: *dumpEvery, DumpTo: os.Stdout,
	})

	fmt.Println()
	fmt.Println("== dashboard ==")
	sched.WriteTelemetryDash(os.Stdout, o)

	fmt.Println()
	fmt.Println("== full report ==")
	sched.WriteTelemetryReport(os.Stdout, o)
}
