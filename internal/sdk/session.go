package sdk

import (
	"encoding/json"
	"errors"
	"fmt"

	"detournet/internal/httpsim"
	"detournet/internal/simproc"
)

// UploadSession is a provider upload in progress: chunks are written
// sequentially and the final write returns the stored metadata. The
// pipelined detour relay uses sessions to start uploading to the
// provider before the whole file has arrived at the DTN.
type UploadSession interface {
	// WriteChunk appends n bytes. last must be set on the final chunk;
	// the returned FileInfo is only valid then.
	WriteChunk(p *simproc.Proc, n float64, last bool) (FileInfo, error)
	// Written returns the bytes appended so far.
	Written() float64
}

// SessionClient is implemented by every provider client in this package.
type SessionClient interface {
	Client
	// BeginUpload opens an upload session for a file of the given total
	// size. md5 optionally carries an end-to-end digest committed with
	// the final chunk.
	BeginUpload(p *simproc.Proc, name string, size float64, md5 string) (UploadSession, error)
}

// SessionToken is the serializable checkpoint of a provider upload
// session: everything another client of the same provider — possibly on
// a different host, after a crash or a route change — needs to reattach
// and continue where the interrupted upload left off.
type SessionToken struct {
	Provider string
	Ref      string // GDrive: session Location; Dropbox: session_id; OneDrive: uploadUrl
	Name     string
	Size     float64
	Offset   float64 // last locally-known confirmed offset
	MD5      string
}

// TokenSession is an UploadSession that can checkpoint itself.
type TokenSession interface {
	UploadSession
	Token() SessionToken
}

// SessionResumer is a client that can reattach to an interrupted
// session from its token. GoogleDrive queries the server for the
// confirmed offset; Dropbox self-corrects via the 409 correct_offset
// protocol. OneDrive's 2015-era community library had no resume, so
// OneDrive uploads restart from zero.
type SessionResumer interface {
	Resume(p *simproc.Proc, tok SessionToken) (UploadSession, error)
}

// --- Google Drive ---

// GDriveSession is a Drive resumable upload in progress.
type GDriveSession struct {
	g        *GoogleDrive
	location string
	size     float64
	sent     float64
	md5      string
	attempt  string // idempotency key captured at Begin/Resume
}

// BeginUpload initiates a resumable session.
func (g *GoogleDrive) BeginUpload(p *simproc.Proc, name string, size float64, md5 string) (UploadSession, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sdk: session needs positive size")
	}
	// Capture the idempotency key before any I/O: the client may be
	// shared (a DTN agent relays many transfers) and another caller may
	// re-tag it while this request is on the wire.
	attempt := g.attemptID
	req, err := g.authed(p, "POST", "/upload/drive/v3/files?uploadType=resumable")
	if err != nil {
		return nil, err
	}
	meta, _ := json.Marshal(map[string]any{"name": name, "size": size})
	req.Header["Content-Type"] = "application/json"
	req.Body = meta
	resp, err := g.do(p, req)
	if err != nil {
		return nil, fmt.Errorf("sdk: drive initiate: %w", err)
	}
	location := resp.Header["Location"]
	if location == "" {
		return nil, fmt.Errorf("sdk: drive initiate returned no Location")
	}
	return &GDriveSession{g: g, location: location, size: size, md5: md5, attempt: attempt}, nil
}

// Written implements UploadSession.
func (s *GDriveSession) Written() float64 { return s.sent }

// WriteChunk implements UploadSession.
func (s *GDriveSession) WriteChunk(p *simproc.Proc, n float64, last bool) (FileInfo, error) {
	if n <= 0 {
		return FileInfo{}, fmt.Errorf("sdk: empty chunk")
	}
	put, err := s.g.authed(p, "PUT", s.location)
	if err != nil {
		return FileInfo{}, err
	}
	put.Header["Content-Range"] = fmt.Sprintf("bytes %.0f-%.0f/%.0f", s.sent, s.sent+n-1, s.size)
	if s.md5 != "" {
		put.Header["X-Content-MD5"] = s.md5
	}
	tagAttempt(put, s.attempt)
	put.BodySize = n
	resp, err := s.g.doRaw(p, put)
	if err != nil {
		return FileInfo{}, err
	}
	s.sent += n
	switch {
	case resp.Status == httpsim.StatusPermanentRedirect && !last:
		return FileInfo{}, nil
	case resp.Status == httpsim.StatusOK && last:
		return decodeMeta(resp.Body)
	default:
		// Keep the typed *StatusError (and its Retry-After hint) for
		// non-2xx answers so callers can branch on 429 vs 507 vs 5xx.
		if err := resp.Error(); err != nil {
			return FileInfo{}, fmt.Errorf("sdk: drive chunk at %.0f: %w", s.sent-n, err)
		}
		return FileInfo{}, fmt.Errorf("sdk: drive chunk at %.0f: status %d (last=%v)", s.sent-n, resp.Status, last)
	}
}

// Location exposes the session URI so an interrupted upload can be
// resumed later with ResumeUpload.
func (s *GDriveSession) Location() string { return s.location }

// Token implements TokenSession.
func (s *GDriveSession) Token() SessionToken {
	return SessionToken{
		Provider: s.g.ProviderName(), Ref: s.location,
		Size: s.size, Offset: s.sent, MD5: s.md5,
	}
}

// Resume implements SessionResumer: the server's status query is ground
// truth for the offset, so a stale token still resumes correctly.
func (g *GoogleDrive) Resume(p *simproc.Proc, tok SessionToken) (UploadSession, error) {
	return g.ResumeUpload(p, tok.Ref, tok.Size, tok.MD5)
}

// ResumeUpload reattaches to an existing Drive resumable session after
// an interruption: it queries the server for the confirmed offset
// (a "bytes */total" status PUT, per the real protocol) and returns a
// session positioned to continue from there.
func (g *GoogleDrive) ResumeUpload(p *simproc.Proc, location string, size float64, md5 string) (UploadSession, error) {
	if location == "" || size <= 0 {
		return nil, fmt.Errorf("sdk: resume needs a location and positive size")
	}
	attempt := g.attemptID // captured before I/O; see BeginUpload
	req, err := g.authed(p, "PUT", location)
	if err != nil {
		return nil, err
	}
	req.Header["Content-Range"] = fmt.Sprintf("bytes */%.0f", size)
	resp, err := g.http.Do(p, req)
	if err != nil {
		return nil, err
	}
	if resp.Status != httpsim.StatusPermanentRedirect {
		return nil, fmt.Errorf("sdk: resume status query got %d", resp.Status)
	}
	var sent float64
	if r, ok := resp.Header["Range"]; ok {
		var hi float64
		if _, err := fmt.Sscanf(r, "bytes=0-%f", &hi); err == nil {
			sent = hi + 1
		}
	}
	return &GDriveSession{g: g, location: location, size: size, md5: md5, sent: sent, attempt: attempt}, nil
}

// --- Dropbox ---

// DropboxSession is an upload_session in progress.
type DropboxSession struct {
	d         *Dropbox
	name      string
	md5       string
	sessionID string
	sent      float64
	attempt   string // idempotency key captured at Begin/Resume
}

// BeginUpload starts an upload session (the start call itself carries no
// data; the first WriteChunk may).
func (d *Dropbox) BeginUpload(p *simproc.Proc, name string, size float64, md5 string) (UploadSession, error) {
	attempt := d.attemptID // captured before I/O; see GoogleDrive.BeginUpload
	body, err := d.apiCall(p, "/2/files/upload_session/start", map[string]any{}, 0, "", "")
	if err != nil {
		return nil, fmt.Errorf("sdk: dropbox session start: %w", err)
	}
	var start struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &start); err != nil || start.SessionID == "" {
		return nil, fmt.Errorf("sdk: dropbox session start: bad response")
	}
	return &DropboxSession{d: d, name: name, md5: md5, sessionID: start.SessionID, attempt: attempt}, nil
}

// Written implements UploadSession.
func (s *DropboxSession) Written() float64 { return s.sent }

// WriteChunk implements UploadSession.
func (s *DropboxSession) WriteChunk(p *simproc.Proc, n float64, last bool) (FileInfo, error) {
	if n < 0 {
		return FileInfo{}, fmt.Errorf("sdk: negative chunk")
	}
	cursor := dbxCursor{SessionID: s.sessionID, Offset: s.sent}
	if last {
		arg := map[string]any{"cursor": cursor, "commit": map[string]string{"path": s.name}}
		body, err := s.d.apiCall(p, "/2/files/upload_session/finish", arg, n, s.md5, s.attempt)
		if err != nil {
			return FileInfo{}, fmt.Errorf("sdk: dropbox finish: %w", err)
		}
		s.sent += n
		return decodeMeta(body)
	}
	arg := map[string]any{"cursor": cursor}
	if _, err := s.d.apiCall(p, "/2/files/upload_session/append_v2", arg, n, "", ""); err != nil {
		return FileInfo{}, fmt.Errorf("sdk: dropbox append at %.0f: %w", s.sent, err)
	}
	s.sent += n
	return FileInfo{}, nil
}

// Token implements TokenSession.
func (s *DropboxSession) Token() SessionToken {
	return SessionToken{
		Provider: s.d.ProviderName(), Ref: s.sessionID,
		Name: s.name, Offset: s.sent, MD5: s.md5,
	}
}

// ResumeUpload reattaches to a Dropbox upload_session. Dropbox has no
// offset-query endpoint; instead the client probes with a zero-byte
// append at its believed offset and, on the 409 incorrect_offset
// response, adopts the server's correct_offset — the self-correction
// dance the real API documents.
func (d *Dropbox) ResumeUpload(p *simproc.Proc, sessionID, name string, offset float64, md5 string) (UploadSession, error) {
	if sessionID == "" {
		return nil, fmt.Errorf("sdk: resume needs a session id")
	}
	attempt := d.attemptID // captured before I/O; see GoogleDrive.BeginUpload
	if offset < 0 {
		return nil, fmt.Errorf("sdk: negative resume offset")
	}
	arg := map[string]any{"cursor": dbxCursor{SessionID: sessionID, Offset: offset}}
	_, err := d.apiCall(p, "/2/files/upload_session/append_v2", arg, 0, "", "")
	if err != nil {
		var se *httpsim.StatusError
		if errors.As(err, &se) && se.Status == httpsim.StatusConflict {
			var body struct {
				CorrectOffset float64 `json:"correct_offset"`
			}
			if jerr := json.Unmarshal([]byte(se.Body), &body); jerr == nil {
				return &DropboxSession{d: d, name: name, md5: md5, sessionID: sessionID, sent: body.CorrectOffset, attempt: attempt}, nil
			}
		}
		return nil, fmt.Errorf("sdk: dropbox resume: %w", err)
	}
	return &DropboxSession{d: d, name: name, md5: md5, sessionID: sessionID, sent: offset, attempt: attempt}, nil
}

// Resume implements SessionResumer.
func (d *Dropbox) Resume(p *simproc.Proc, tok SessionToken) (UploadSession, error) {
	return d.ResumeUpload(p, tok.Ref, tok.Name, tok.Offset, tok.MD5)
}

// --- OneDrive ---

// OneDriveSession is a Graph upload session in progress.
type OneDriveSession struct {
	o         *OneDrive
	uploadURL string
	size      float64
	sent      float64
	md5       string
	attempt   string // idempotency key captured at Begin
}

// BeginUpload creates the upload session; OneDrive requires the total
// size for fragment range math.
func (o *OneDrive) BeginUpload(p *simproc.Proc, name string, size float64, md5 string) (UploadSession, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sdk: session needs positive size")
	}
	attempt := o.attemptID // captured before I/O; see GoogleDrive.BeginUpload
	req, err := o.authed(p, "POST", "/v1.0/drive/root:/"+name+":/createUploadSession")
	if err != nil {
		return nil, err
	}
	resp, err := o.do(p, req)
	if err != nil {
		return nil, fmt.Errorf("sdk: onedrive session: %w", err)
	}
	var sess struct {
		UploadURL string `json:"uploadUrl"`
	}
	if err := json.Unmarshal(resp.Body, &sess); err != nil || sess.UploadURL == "" {
		return nil, fmt.Errorf("sdk: onedrive session: bad response")
	}
	return &OneDriveSession{o: o, uploadURL: sess.UploadURL, size: size, md5: md5, attempt: attempt}, nil
}

// Written implements UploadSession.
func (s *OneDriveSession) Written() float64 { return s.sent }

// WriteChunk implements UploadSession.
func (s *OneDriveSession) WriteChunk(p *simproc.Proc, n float64, last bool) (FileInfo, error) {
	if n <= 0 {
		return FileInfo{}, fmt.Errorf("sdk: empty fragment")
	}
	put, err := s.o.authed(p, "PUT", s.uploadURL)
	if err != nil {
		return FileInfo{}, err
	}
	put.Header["Content-Range"] = fmt.Sprintf("bytes %.0f-%.0f/%.0f", s.sent, s.sent+n-1, s.size)
	if s.md5 != "" {
		put.Header["X-Content-MD5"] = s.md5
	}
	tagAttempt(put, s.attempt)
	put.BodySize = n
	resp, err := s.o.doRaw(p, put)
	if err != nil {
		return FileInfo{}, err
	}
	s.sent += n
	switch {
	case resp.Status == 202 && !last:
		return FileInfo{}, nil
	case resp.Status == httpsim.StatusCreated && last:
		return decodeMeta(resp.Body)
	default:
		// Keep the typed *StatusError (and its Retry-After hint) for
		// non-2xx answers so callers can branch on 429 vs 507 vs 5xx.
		if err := resp.Error(); err != nil {
			return FileInfo{}, fmt.Errorf("sdk: onedrive fragment at %.0f: %w", s.sent-n, err)
		}
		return FileInfo{}, fmt.Errorf("sdk: onedrive fragment at %.0f: status %d (last=%v)", s.sent-n, resp.Status, last)
	}
}

// Token implements TokenSession. OneDrive cannot Resume (see
// SessionResumer), but the token still records progress for accounting.
func (s *OneDriveSession) Token() SessionToken {
	return SessionToken{
		Provider: s.o.ProviderName(), Ref: s.uploadURL,
		Size: s.size, Offset: s.sent, MD5: s.md5,
	}
}

var (
	_ SessionClient  = (*GoogleDrive)(nil)
	_ SessionClient  = (*Dropbox)(nil)
	_ SessionClient  = (*OneDrive)(nil)
	_ TokenSession   = (*GDriveSession)(nil)
	_ TokenSession   = (*DropboxSession)(nil)
	_ TokenSession   = (*OneDriveSession)(nil)
	_ SessionResumer = (*GoogleDrive)(nil)
	_ SessionResumer = (*Dropbox)(nil)
)
