package overlay_test

import (
	"fmt"
	"strings"

	"detournet/internal/fluid"
	"detournet/internal/overlay"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

// A three-member overlay discovering that the fast path to c runs
// through b — the triangle-inequality violation the paper exploits.
func ExampleMesh_BestPath() {
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	for _, n := range []string{"a", "b", "c"} {
		g.MustAddNode(&topology.Node{Name: n, Kind: topology.Host, RespondsICMP: true})
	}
	g.MustConnect("a", "b", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.005})
	g.MustConnect("b", "c", topology.LinkSpec{CapacityBps: 8e6, DelaySec: 0.005})
	g.MustConnect("a", "c", topology.LinkSpec{CapacityBps: 1e6, DelaySec: 0.004})
	tn := transport.NewNet(g, r, tcpmodel.Params{})
	for _, h := range []string{"a", "b", "c"} {
		overlay.NewDaemon(tn, h).Start()
	}
	mesh := overlay.NewMesh(tn, "a", []string{"a", "b", "c"})

	r.Go("demo", func(p *simproc.Proc) {
		if err := mesh.ProbeAll(p); err != nil {
			panic(err)
		}
		path, _ := mesh.BestPath("a", "c")
		fmt.Println(strings.Join(path, " -> "))
	})
	r.RunUntil(simclock.Time(1e6))
	// Output:
	// a -> b -> c
}
