package rsyncx

import (
	"math/rand"
	"strings"
	"testing"

	"detournet/internal/fluid"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
	"detournet/internal/topology"
	"detournet/internal/transport"
)

type rig struct {
	eng *simclock.Engine
	r   *simproc.Runner
	tn  *transport.Net
	d   *Daemon
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := simclock.NewEngine()
	r := simproc.New(eng)
	g := topology.New(fluid.New(eng))
	g.MustAddNode(&topology.Node{Name: "user", Kind: topology.Host, RespondsICMP: true})
	g.MustAddNode(&topology.Node{Name: "dtn", Kind: topology.Host, RespondsICMP: true})
	g.MustConnect("user", "dtn", topology.LinkSpec{CapacityBps: 6e6, DelaySec: 0.008})
	tn := transport.NewNet(g, r, tcpmodel.Params{RwndBytes: 4 << 20})
	d := NewDaemon(tn, "dtn")
	d.Start()
	return &rig{eng: eng, r: r, tn: tn, d: d}
}

func (rg *rig) run(t *testing.T, fn func(p *simproc.Proc, cl *Client)) {
	t.Helper()
	done := false
	rg.r.Go("test", func(p *simproc.Proc) {
		fn(p, NewClient(rg.tn, "user", "dtn"))
		done = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done {
		t.Fatal("test proc did not finish")
	}
}

func TestPushStoresVerifiedData(t *testing.T) {
	rg := newRig(t)
	rng := rand.New(rand.NewSource(1))
	data := randBytes(rng, 50000)
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		if err := cl.Push(p, "f.bin", data); err != nil {
			t.Errorf("push: %v", err)
			return
		}
		st, ok := rg.d.Staged("f.bin")
		if !ok {
			t.Error("file not staged")
			return
		}
		if st.MD5 != Checksum(data) || st.Size != float64(len(data)) {
			t.Errorf("staged meta wrong: %+v", st)
		}
		if !equalData(st.Data, data) {
			t.Error("staged bytes differ")
		}
	})
	if rg.d.Pushes != 1 {
		t.Fatalf("Pushes = %d", rg.d.Pushes)
	}
}

func TestSecondPushUsesDelta(t *testing.T) {
	rg := newRig(t)
	rng := rand.New(rand.NewSource(2))
	data := randBytes(rng, 2_000_000)
	var t1, t2 float64
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		t0 := p.Now()
		if err := cl.Push(p, "f.bin", data); err != nil {
			t.Error(err)
			return
		}
		t1 = float64(p.Now() - t0)
		// Mutate a single byte: second push should ship a tiny delta and
		// be much faster.
		data2 := append([]byte(nil), data...)
		data2[100] ^= 0xff
		t0 = p.Now()
		if err := cl.Push(p, "f.bin", data2); err != nil {
			t.Error(err)
			return
		}
		t2 = float64(p.Now() - t0)
		st, _ := rg.d.Staged("f.bin")
		if !equalData(st.Data, data2) {
			t.Error("updated bytes wrong")
		}
	})
	if t2 >= t1/3 {
		t.Fatalf("delta push not cheaper: first=%v second=%v", t1, t2)
	}
}

func TestPushSizedChargesWireTime(t *testing.T) {
	rg := newRig(t)
	var dur float64
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		t0 := p.Now()
		if err := cl.PushSized(p, "big.bin", 10e6, "digest"); err != nil {
			t.Error(err)
			return
		}
		dur = float64(p.Now() - t0)
		st, ok := rg.d.Staged("big.bin")
		if !ok || st.Size != 10e6 || st.Data != nil || st.MD5 != "digest" {
			t.Errorf("staged = %+v %v", st, ok)
		}
	})
	// 10.3 MB wire at 6 MB/s ≈ 1.7s plus handshakes/acks.
	if dur < 1.6 || dur > 3 {
		t.Fatalf("sized push took %v, want ~1.7-3s", dur)
	}
}

func TestDeleteStaged(t *testing.T) {
	rg := newRig(t)
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		if err := cl.PushSized(p, "f.bin", 1000, ""); err != nil {
			t.Error(err)
		}
		if err := cl.Delete(p, "f.bin"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, ok := rg.d.Staged("f.bin"); ok {
			t.Error("file still staged")
		}
		if err := cl.Delete(p, "f.bin"); err == nil {
			t.Error("double delete succeeded")
		} else if !strings.Contains(err.Error(), "no such") {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

func TestPushToUnreachableDaemon(t *testing.T) {
	rg := newRig(t)
	rg.run(t, func(p *simproc.Proc, _ *Client) {
		cl := NewClient(rg.tn, "user", "user") // no daemon there
		if err := cl.Push(p, "f", []byte("x")); err == nil {
			t.Error("push to non-daemon succeeded")
		}
		if err := cl.PushSized(p, "f", 10, ""); err == nil {
			t.Error("sized push to non-daemon succeeded")
		}
	})
}

func TestNegativeSizeRejected(t *testing.T) {
	rg := newRig(t)
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		if err := cl.PushSized(p, "f", -1, ""); err == nil {
			t.Error("negative size accepted")
		}
	})
}

func TestConcurrentPushesShareBandwidth(t *testing.T) {
	rg := newRig(t)
	var d1, d2 float64
	done1 := false
	rg.r.Go("p1", func(p *simproc.Proc) {
		cl := NewClient(rg.tn, "user", "dtn")
		t0 := p.Now()
		if err := cl.PushSized(p, "a.bin", 6e6, ""); err != nil {
			t.Error(err)
		}
		d1 = float64(p.Now() - t0)
		done1 = true
	})
	done2 := false
	rg.r.Go("p2", func(p *simproc.Proc) {
		cl := NewClient(rg.tn, "user", "dtn")
		t0 := p.Now()
		if err := cl.PushSized(p, "b.bin", 6e6, ""); err != nil {
			t.Error(err)
		}
		d2 = float64(p.Now() - t0)
		done2 = true
	})
	rg.r.RunUntil(simclock.Time(1e6))
	if !done1 || !done2 {
		t.Fatal("pushes did not finish")
	}
	// Alone each would take ~1s; sharing the 6MB/s link they take ~2s.
	if d1 < 1.8 || d2 < 1.8 {
		t.Fatalf("concurrent pushes too fast: %v %v", d1, d2)
	}
}
