package report

import (
	"bytes"
	"strings"
	"testing"

	"detournet/internal/experiments"
)

func TestWriteFullReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Config{Options: experiments.Quick(), Extensions: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# detournet reproduction report",
		"Headline (paper Sec I)",
		"Fig 2", "Fig 4", "Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11",
		"Table I", "Table II", "Table III", "Table IV", "Table V",
		"traceroute to", "* * *",
		"Sensitivity", "Contention", "Workload study",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Markdown structure: sections and code fences balance.
	if n := strings.Count(out, "```"); n%2 != 0 {
		t.Errorf("unbalanced code fences: %d", n)
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestWriteWithoutExtensions(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Config{Options: experiments.Quick()}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Sensitivity") {
		t.Fatal("extensions rendered despite Extensions=false")
	}
}

func TestWriteFailurePropagates(t *testing.T) {
	w := &failWriter{failAfter: 1}
	err := Write(w, Config{Options: experiments.Quick()})
	if err == nil {
		t.Fatal("writer failure not propagated")
	}
}

type failWriter struct{ failAfter int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.failAfter <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.failAfter--
	return len(p), nil
}
