// Package detourselect implements the automatic detour selection the
// paper identifies as open work ("we have not implemented an automatic
// detour selection algorithm", Sec III-B): given a client, a provider,
// and candidate DTNs, pick the route expected to move a file of a given
// size fastest.
//
// Two strategies are provided. The probe Selector measures each
// candidate path with a small transfer and extrapolates with the TCP
// transfer-time model — capturing the paper's observation that the best
// route depends on client, provider, *and* file size. The Bandit is an
// ε-greedy online selector for repeated transfers that keeps exploring,
// the natural fit for the paper's "monitor and bypass dynamic
// bottlenecks" future work.
package detourselect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"detournet/internal/core"
	"detournet/internal/sdk"
	"detournet/internal/simproc"
	"detournet/internal/tcpmodel"
)

// Prediction is one route's estimated transfer time.
type Prediction struct {
	Route   core.Route
	Seconds float64
	// Hop1/Hop2 are the per-leg estimates (Hop1 zero for direct).
	Hop1, Hop2 float64
}

// Selector chooses routes by active probing.
type Selector struct {
	// ProbeBytes sizes the probe transfers; default 2 MiB — big enough
	// to ride past slow start, small enough to be cheap.
	ProbeBytes float64
	// Params is the TCP model used for extrapolation.
	Params tcpmodel.Params
}

// NewSelector returns a selector with defaults.
func NewSelector() *Selector {
	return &Selector{ProbeBytes: 2 << 20, Params: tcpmodel.Params{}.WithDefaults()}
}

// rateFromProbe converts a probe duration into an estimated steady
// throughput by stripping the model's fixed costs.
func (s *Selector) rateFromProbe(bytes, seconds float64) float64 {
	if seconds <= 0 {
		return math.Inf(1)
	}
	return bytes / seconds
}

// Choose probes the direct route and every candidate detour, then
// returns the route with the lowest predicted time for size bytes,
// alongside every prediction sorted fastest-first.
func (s *Selector) Choose(p *simproc.Proc, direct sdk.Client, detours map[string]*core.DetourClient,
	provider string, size float64) (core.Route, []Prediction, error) {
	if size <= 0 {
		return core.Route{}, nil, fmt.Errorf("detourselect: non-positive size")
	}
	probeB := s.ProbeBytes
	if probeB <= 0 {
		probeB = 2 << 20
	}
	var preds []Prediction

	// Direct probe: one small upload, extrapolated linearly.
	probeName := ".probe-direct"
	t0 := p.Now()
	if _, err := direct.Upload(p, probeName, probeB, ""); err != nil {
		return core.Route{}, nil, fmt.Errorf("detourselect: direct probe: %w", err)
	}
	directDur := float64(p.Now() - t0)
	_ = direct.Delete(p, probeName)
	directRate := s.rateFromProbe(probeB, directDur)
	preds = append(preds, Prediction{
		Route:   core.DirectRoute,
		Seconds: size / directRate,
		Hop2:    size / directRate,
	})

	// Detour probes: hop1 (rsync) and hop2 (agent-side upload), summed —
	// the store-and-forward model where leg times add.
	names := make([]string, 0, len(detours))
	for via := range detours {
		names = append(names, via)
	}
	sort.Strings(names)
	for _, via := range names {
		dc := detours[via]
		h1, err := dc.ProbeHop1(p, probeB)
		if err != nil {
			return core.Route{}, nil, fmt.Errorf("detourselect: hop1 probe via %s: %w", via, err)
		}
		h2, err := dc.ProbeHop2(p, provider, probeB)
		if err != nil {
			return core.Route{}, nil, fmt.Errorf("detourselect: hop2 probe via %s: %w", via, err)
		}
		e1 := size / s.rateFromProbe(probeB, h1)
		e2 := size / s.rateFromProbe(probeB, h2)
		preds = append(preds, Prediction{
			Route:   core.ViaRoute(via),
			Seconds: e1 + e2,
			Hop1:    e1,
			Hop2:    e2,
		})
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].Seconds < preds[j].Seconds })
	return preds[0].Route, preds, nil
}

// Bandit is an ε-greedy online route selector for repeated transfers to
// one provider: it mostly exploits the historically fastest route but
// keeps exploring so it notices when a bottleneck appears or clears.
type Bandit struct {
	// Epsilon is the exploration probability (default 0.1).
	Epsilon float64
	// Weight, when non-nil, scales a route's score during selection —
	// the hook the health layer uses to down-weight routes on probation
	// (a sustained gray-failure outlier) without hard-excluding them.
	// Healthy routes return 1; probation routes a small fraction. The
	// raw throughput estimate is untouched, so a route that recovers is
	// immediately competitive again.
	Weight func(core.Route) float64

	routes []core.Route
	rng    *rand.Rand
	// Per-route exponentially weighted mean throughput (bytes/sec).
	ewma  map[core.Route]float64
	seen  map[core.Route]int
	alpha float64
}

// NewBandit returns a selector over the given routes with its own
// rng derived from seed — the historical default.
func NewBandit(routes []core.Route, seed int64) *Bandit {
	return NewBanditRand(routes, rand.New(rand.NewSource(seed)))
}

// NewBanditRand returns a selector over the given routes that draws
// exploration from the injected rng. Callers that drive many bandits
// (the scheduler's route cache keeps one per cache key) share a single
// seeded source so whole runs replay bit-for-bit. The rng must not be
// used concurrently with the bandit's methods; the bandit itself adds
// no locking.
func NewBanditRand(routes []core.Route, rng *rand.Rand) *Bandit {
	if len(routes) == 0 {
		panic("detourselect: bandit needs routes")
	}
	if rng == nil {
		panic("detourselect: bandit needs an rng")
	}
	return &Bandit{
		Epsilon: 0.1,
		routes:  append([]core.Route(nil), routes...),
		rng:     rng,
		ewma:    make(map[core.Route]float64),
		seen:    make(map[core.Route]int),
		alpha:   0.3,
	}
}

// Next picks the route for the next transfer: an unexplored route first,
// then ε-greedy over observed throughput.
func (b *Bandit) Next() core.Route {
	for _, r := range b.routes {
		if b.seen[r] == 0 {
			return r
		}
	}
	if b.rng.Float64() < b.Epsilon {
		return b.routes[b.rng.Intn(len(b.routes))]
	}
	return b.Best()
}

// Best returns the route with the highest health-weighted observed
// throughput.
func (b *Bandit) Best() core.Route {
	best := b.routes[0]
	for _, r := range b.routes[1:] {
		if b.Score(r) > b.Score(best) {
			best = r
		}
	}
	return best
}

// Score is the health-weighted throughput estimate selection ranks by:
// Throughput(route) times the Weight hook (1 when no hook is set).
func (b *Bandit) Score(route core.Route) float64 {
	s := b.ewma[route]
	if b.Weight != nil {
		s *= b.Weight(route)
	}
	return s
}

// Observe records a completed transfer's outcome.
func (b *Bandit) Observe(route core.Route, sizeBytes, seconds float64) {
	if seconds <= 0 {
		return
	}
	rate := sizeBytes / seconds
	if b.seen[route] == 0 {
		b.ewma[route] = rate
	} else {
		b.ewma[route] = b.alpha*rate + (1-b.alpha)*b.ewma[route]
	}
	b.seen[route]++
}

// Throughput reports the current estimate for a route (0 if unobserved).
func (b *Bandit) Throughput(route core.Route) float64 { return b.ewma[route] }
