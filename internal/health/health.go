// Package health is the passive gray-failure detection and mitigation
// layer. Every other robustness mechanism in the scheduler keys off
// hard errors — connection resets, 5xx bursts, withdrawn routes. Gray
// failures produce none of those: a DTN with a dying disk or a provider
// silently throttling one peering point serves 200s forever, just
// slowly, and an error-driven control plane never routes around it.
//
// The tracker watches the only signal a gray failure cannot hide:
// throughput. It keeps per-entity baselines (EWMA + a recent-sample
// window, via internal/stats) at three granularities — route, DTN,
// provider — and drives three mitigations off them:
//
//   - Stall budgets: an adaptive per-transfer time budget derived from
//     the route's learned baseline. The executor's watchdog aborts (with
//     checkpoint intact) any transfer that exceeds its budget or makes
//     no byte progress for a grace window, surfacing core.ErrStall.
//   - Outlier ejection: an entity whose observed rate sits below a
//     fraction of its peers' median baseline for a sustained streak is
//     ejected into probation — distinct from a breaker opening: the
//     entity stays selectable at a trickle weight, and periodic canary
//     transfers decide re-admission instead of a fixed cooldown.
//   - Retry budgets: a per-provider token bucket where retries spend
//     tokens that only successes earn back, so a retry storm cannot
//     amplify a brownout into a metastable failure. An exhausted budget
//     parks the job with a typed error and a RetryAfter hint.
//
// All state is guarded by one mutex; methods are safe for concurrent
// workers. Time comes from the injected Now (the scheduler passes the
// virtual clock), so replays are deterministic.
package health

import (
	"fmt"
	"sort"
	"sync"

	"detournet/internal/stats"
	"detournet/internal/tracelog"
)

// Entity classes the scheduler observes. Peer comparison happens within
// a class: routes to one provider compare against each other, DTNs
// against DTNs, providers against providers.
const (
	ClassRoute    = "route"
	ClassDTN      = "dtn"
	ClassProvider = "provider"
)

// Options tune the tracker. Zero values take the documented defaults.
type Options struct {
	// Alpha is the EWMA smoothing factor for baselines (default 0.3,
	// matching the bandit's).
	Alpha float64
	// Window is how many recent rate samples each entity keeps for
	// quantile queries (default 16).
	Window int

	// FloorFrac sets the adaptive stall floor: a transfer's budget is
	// the time it would take running at FloorFrac of the route baseline
	// (default 0.25 — four times the expected duration).
	FloorFrac float64
	// Grace is added to every budget to absorb session setup, token
	// refresh, and backoff sleeps (default 30 s).
	Grace float64
	// MinBudget is the smallest budget ever issued (default 90 s), so
	// tiny files on fast baselines don't get hair-trigger watchdogs.
	MinBudget float64
	// DefaultBudget is issued when no baseline exists yet (default
	// 600 s) — first transfers must be allowed to be slow.
	DefaultBudget float64
	// NoProgressGrace aborts a transfer whose live byte watermark has
	// not advanced for this long (default 60 s — generous because a
	// detour's second hop only refreshes its watermark at each relay
	// poll).
	NoProgressGrace float64
	// CheckInterval is the watchdog poll period (default 5 s).
	CheckInterval float64

	// OutlierFrac: an observation below OutlierFrac × the peer median
	// baseline is an outlier (default 0.4).
	OutlierFrac float64
	// OutlierStreak consecutive outlier observations eject the entity
	// into probation (default 3).
	OutlierStreak int
	// MinPeers is how many peer baselines (besides the entity itself)
	// must exist before outlier judgment is attempted (default 1).
	MinPeers int
	// ProbationWeight is the selection-weight multiplier for entities
	// on probation (default 0.1) — down-weighted, not excluded.
	ProbationWeight float64
	// CanaryInterval rate-limits deliberate probation probes: at most
	// one canary transfer per entity per interval (default 45 s).
	CanaryInterval float64
	// CanarySuccesses consecutive healthy observations while on
	// probation re-admit the entity (default 2).
	CanarySuccesses int

	// RetryBurst is the per-provider retry token bucket capacity, and
	// the initial fill (default 8).
	RetryBurst float64
	// RetryEarn is the tokens a completed transfer earns back for its
	// provider (default 0.5 — two successes fund one retry).
	RetryEarn float64
	// RetryAfter is the park hint handed out when a budget is
	// exhausted (default 30 s).
	RetryAfter float64

	// Now supplies the clock (required; the scheduler passes the
	// virtual clock so replays are deterministic).
	Now func() float64
	// Trace receives health.* transition events; nil is safe.
	Trace *tracelog.Log
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.Window <= 0 {
		o.Window = 16
	}
	if o.FloorFrac <= 0 || o.FloorFrac >= 1 {
		o.FloorFrac = 0.25
	}
	if o.Grace <= 0 {
		o.Grace = 30
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 90
	}
	if o.DefaultBudget <= 0 {
		o.DefaultBudget = 600
	}
	if o.NoProgressGrace <= 0 {
		o.NoProgressGrace = 60
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = 5
	}
	if o.OutlierFrac <= 0 || o.OutlierFrac >= 1 {
		o.OutlierFrac = 0.4
	}
	if o.OutlierStreak <= 0 {
		o.OutlierStreak = 3
	}
	if o.MinPeers <= 0 {
		o.MinPeers = 1
	}
	if o.ProbationWeight <= 0 || o.ProbationWeight >= 1 {
		o.ProbationWeight = 0.1
	}
	if o.CanaryInterval <= 0 {
		o.CanaryInterval = 45
	}
	if o.CanarySuccesses <= 0 {
		o.CanarySuccesses = 2
	}
	if o.RetryBurst <= 0 {
		o.RetryBurst = 8
	}
	if o.RetryEarn <= 0 {
		o.RetryEarn = 0.5
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 30
	}
	return o
}

// entity is one tracked route/DTN/provider.
type entity struct {
	class, name string
	base        *stats.EWMA
	recent      []float64 // last Window observed rates
	streak      int       // consecutive outlier observations
	probation   bool
	since       float64 // when probation began
	lastCanary  float64
	canaryOK    int
	canaryMiss  int // consecutive failed canaries (backs off the next)
	obs         int
	stalls      int
}

// bucket is one provider's retry token bucket.
type bucket struct {
	tokens float64
	spent  int
	denied int
}

// Tracker is the shared health state. Construct with New.
type Tracker struct {
	opt Options

	mu          sync.Mutex
	entities    map[string]*entity // key: class + "|" + name
	buckets     map[string]*bucket // key: provider
	transitions []string
}

// New returns a tracker. Options.Now is required.
func New(opt Options) *Tracker {
	opt = opt.withDefaults()
	if opt.Now == nil {
		panic("health: Options.Now is required")
	}
	return &Tracker{
		opt:      opt,
		entities: make(map[string]*entity),
		buckets:  make(map[string]*bucket),
	}
}

// CheckInterval returns the watchdog poll period.
func (t *Tracker) CheckInterval() float64 { return t.opt.CheckInterval }

// NoProgressGrace returns the no-byte-progress abort window.
func (t *Tracker) NoProgressGrace() float64 { return t.opt.NoProgressGrace }

func key(class, name string) string { return class + "|" + name }

// get returns (creating if needed) the entity record. Callers hold t.mu.
func (t *Tracker) get(class, name string) *entity {
	k := key(class, name)
	e, ok := t.entities[k]
	if !ok {
		e = &entity{class: class, name: name, base: stats.NewEWMA(t.opt.Alpha)}
		t.entities[k] = e
	}
	return e
}

// peerMedian returns the median baseline of e's class peers (excluding
// e itself) and whether enough peers exist to judge. Callers hold t.mu.
func (t *Tracker) peerMedian(e *entity) (float64, bool) {
	var peers []float64
	for _, o := range t.entities {
		if o.class == e.class && o.name != e.name && o.base.Count() > 0 {
			peers = append(peers, o.base.Value())
		}
	}
	if len(peers) < t.opt.MinPeers {
		return 0, false
	}
	return stats.Median(peers), true
}

// ObserveTransfer folds one completed transfer into an entity's
// baseline and runs the outlier/probation state machine on it.
func (t *Tracker) ObserveTransfer(class, name string, bytes, seconds float64) {
	if seconds <= 0 || bytes <= 0 {
		return
	}
	rate := bytes / seconds
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.get(class, name)
	e.obs++
	e.recent = append(e.recent, rate)
	if len(e.recent) > t.opt.Window {
		e.recent = e.recent[len(e.recent)-t.opt.Window:]
	}
	med, ok := t.peerMedian(e)
	outlier := ok && rate < t.opt.OutlierFrac*med
	// A probation entity's baseline keeps learning (that is how
	// recovery shows), and so does a healthy one's; but a healthy
	// entity's baseline should not be dragged down by the very outlier
	// observations the ejection logic is counting — a gray entity would
	// lower its own bar until it looks normal again. Outliers feed the
	// streak, not the baseline.
	if !outlier || e.probation {
		e.base.Observe(rate)
	}
	t.judgeLocked(e, outlier)
}

// NoteStall records a watchdog abort against an entity — the strongest
// outlier signal there is (the transfer could not even finish inside
// its 4x-slack budget, a violation no honest slow sample produces), so
// it advances the ejection streak by two where an outlier observation
// advances it by one.
func (t *Tracker) NoteStall(class, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.get(class, name)
	e.stalls++
	t.judgeLocked(e, true)
	t.judgeLocked(e, true)
}

// judgeLocked advances the probation state machine after one
// observation (outlier true/false). Callers hold t.mu.
func (t *Tracker) judgeLocked(e *entity, outlier bool) {
	now := t.opt.Now()
	if outlier {
		e.streak++
		e.canaryOK = 0
		if e.probation {
			e.canaryMiss++ // the canary came back sick; back off the next one
		}
		if !e.probation && e.streak >= t.opt.OutlierStreak {
			e.probation = true
			e.since = now
			// First canary only after a full interval — the entity was
			// just observed sick.
			e.lastCanary = now
			t.transition(now, e, "healthy", "probation")
		}
		return
	}
	e.streak = 0
	e.canaryMiss = 0
	if e.probation {
		e.canaryOK++
		if e.canaryOK >= t.opt.CanarySuccesses {
			e.probation = false
			e.canaryOK = 0
			t.transition(now, e, "probation", "healthy")
		}
	}
}

// transition records one state change. Callers hold t.mu.
func (t *Tracker) transition(now float64, e *entity, from, to string) {
	t.transitions = append(t.transitions,
		fmt.Sprintf("t=%.3f %s %s %s->%s", now, e.class, e.name, from, to))
	t.opt.Trace.Emit("health.transition", map[string]any{
		tracelog.AttrEntity: e.name, "class": e.class, "from": from, "to": to,
	})
}

// NoteWarning records a non-transfer health event — a subsystem
// degrading without failing (the control journal falling back to
// in-memory mode on a full device, for instance). It lands in the same
// deterministic transitions log the state machine writes, so reports
// and replays surface it alongside probation flips.
func (t *Tracker) NoteWarning(class, name, msg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.opt.Now()
	t.transitions = append(t.transitions,
		fmt.Sprintf("t=%.3f warn %s %s %s", now, class, name, msg))
	t.opt.Trace.Emit("health.warning", map[string]any{
		tracelog.AttrEntity: name, "class": class, "msg": msg,
	})
}

// Weight returns the selection-weight multiplier for an entity: 1 when
// healthy (or unknown), ProbationWeight on probation.
func (t *Tracker) Weight(class, name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entities[key(class, name)]; ok && e.probation {
		return t.opt.ProbationWeight
	}
	return 1
}

// Probation reports whether an entity is currently ejected.
func (t *Tracker) Probation(class, name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entities[key(class, name)]
	return ok && e.probation
}

// CanaryTake reports whether a deliberate canary transfer should be
// sent over a probation entity now, and consumes the canary slot if so
// — at most one per CanaryInterval, so probation traffic stays a
// trickle.
func (t *Tracker) CanaryTake(class, name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entities[key(class, name)]
	if !ok || !e.probation {
		return false
	}
	now := t.opt.Now()
	// Failed canaries back off exponentially (capped at 8x): while the
	// entity keeps testing sick there is no point burning a full transfer
	// on it every interval.
	backoff := e.canaryMiss
	if backoff > 3 {
		backoff = 3
	}
	if now-e.lastCanary < t.opt.CanaryInterval*float64(int(1)<<backoff) {
		return false
	}
	e.lastCanary = now
	return true
}

// Budget returns the stall watchdog's time budget for moving size bytes
// over the named entity: the time the transfer would take running at
// FloorFrac of the learned baseline, plus Grace — or DefaultBudget when
// no baseline exists yet.
func (t *Tracker) Budget(class, name string, size float64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entities[key(class, name)]
	if !ok || e.base.Count() == 0 {
		return t.opt.DefaultBudget
	}
	b := size/(e.base.Value()*t.opt.FloorFrac) + t.opt.Grace
	floor := t.opt.MinBudget
	if e.probation {
		// Canaries are cheap probes, not full transfers: a probationary
		// entity gets half the patience, so a still-sick route is
		// re-confirmed sick (and the canary written off) quickly.
		b /= 2
		floor /= 2
	}
	if b < floor {
		b = floor
	}
	return b
}

// Baseline returns an entity's learned rate (bytes/sec) and whether one
// exists.
func (t *Tracker) Baseline(class, name string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entities[key(class, name)]
	if !ok || e.base.Count() == 0 {
		return 0, false
	}
	return e.base.Value(), true
}

// bucketFor returns (creating full if needed) a provider's retry
// bucket. Callers hold t.mu.
func (t *Tracker) bucketFor(provider string) *bucket {
	b, ok := t.buckets[provider]
	if !ok {
		b = &bucket{tokens: t.opt.RetryBurst}
		t.buckets[provider] = b
	}
	return b
}

// AllowRetry spends one retry token for the provider. When the bucket
// is empty it reports false with the RetryAfter park hint — the caller
// parks the job instead of hammering a browned-out provider.
func (t *Tracker) AllowRetry(provider string) (bool, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucketFor(provider)
	if b.tokens < 1 {
		b.denied++
		if b.denied == 1 {
			now := t.opt.Now()
			t.transitions = append(t.transitions,
				fmt.Sprintf("t=%.3f budget %s exhausted", now, provider))
			t.opt.Trace.Emit("health.budget", map[string]any{
				tracelog.AttrEntity: provider, "state": "exhausted",
			})
		}
		return false, t.opt.RetryAfter
	}
	b.tokens--
	b.spent++
	return true, 0
}

// RestoreSpentRetries replays journaled retry-token spends after a
// crash: the recovered tracker starts from a full bucket, so the
// control plane re-debits what the dead incarnation already spent to
// keep the budget crash-consistent.
func (t *Tracker) RestoreSpentRetries(provider string, spent int) {
	if spent <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucketFor(provider)
	b.tokens -= float64(spent)
	if b.tokens < 0 {
		b.tokens = 0
	}
	b.spent += spent
}

// NoteSuccess earns retry tokens back for the provider — successes fund
// retries, so a healthy provider's budget stays full and a sick one's
// drains and stays drained.
func (t *Tracker) NoteSuccess(provider string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucketFor(provider)
	was := b.tokens
	b.tokens += t.opt.RetryEarn
	if b.tokens > t.opt.RetryBurst {
		b.tokens = t.opt.RetryBurst
	}
	if was < 1 && b.tokens >= 1 && b.denied > 0 {
		b.denied = 0 // re-log next exhaustion
	}
}

// EntityHealth is one row of the health table.
type EntityHealth struct {
	Class, Entity string
	Baseline      float64 // bytes/sec (0 when unlearned)
	Probation     bool
	Streak        int
	Observations  int
	Stalls        int
}

// Snapshot returns every tracked entity, sorted by class then name —
// deterministic, for the health table and reports.
func (t *Tracker) Snapshot() []EntityHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EntityHealth, 0, len(t.entities))
	for _, e := range t.entities {
		out = append(out, EntityHealth{
			Class: e.class, Entity: e.name,
			Baseline: e.base.Value(), Probation: e.probation,
			Streak: e.streak, Observations: e.obs, Stalls: e.stalls,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// RetryBudget is one provider's retry-bucket snapshot.
type RetryBudget struct {
	Provider string
	Tokens   float64
	Spent    int
	Denied   int
}

// RetryBudgets returns every provider bucket, sorted by provider.
func (t *Tracker) RetryBudgets() []RetryBudget {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RetryBudget, 0, len(t.buckets))
	for p, b := range t.buckets {
		out = append(out, RetryBudget{Provider: p, Tokens: b.tokens, Spent: b.spent, Denied: b.denied})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// Transitions returns the recorded state-change log lines in order.
func (t *Tracker) Transitions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.transitions...)
}
