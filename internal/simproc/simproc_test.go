package simproc

import (
	"strings"
	"testing"

	"detournet/internal/simclock"
)

func TestSleepSequencing(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	var trace []string
	r.Go("a", func(p *Proc) {
		p.Sleep(2)
		trace = append(trace, "a@2")
		p.Sleep(3)
		trace = append(trace, "a@5")
	})
	r.Go("b", func(p *Proc) {
		p.Sleep(1)
		trace = append(trace, "b@1")
		p.Sleep(3)
		trace = append(trace, "b@4")
	})
	end := r.Run()
	if end != 5 {
		t.Fatalf("end = %v, want 5", end)
	}
	want := "b@1,a@2,b@4,a@5"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
}

func TestZeroSleepYields(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	var trace []string
	r.Go("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Sleep(0)
		trace = append(trace, "a2")
	})
	r.Go("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	r.Run()
	// a starts first (scheduled first), yields at 0, b runs, then a resumes.
	if got := strings.Join(trace, ","); got != "a1,b1,a2" {
		t.Fatalf("trace = %s", got)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	r.Go("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	r.Run()
}

func TestFutureAwait(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	f := NewFuture[int](r)
	var got int
	var at simclock.Time
	r.Go("waiter", func(p *Proc) {
		got = Await(p, f)
		at = p.Now()
	})
	r.Go("setter", func(p *Proc) {
		p.Sleep(7)
		f.Set(42)
	})
	r.Run()
	if got != 42 || at != 7 {
		t.Fatalf("got %d at %v, want 42 at 7", got, at)
	}
}

func TestFutureAlreadySet(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	f := NewFuture[string](r)
	f.Set("x")
	var got string
	r.Go("w", func(p *Proc) { got = Await(p, f) })
	r.Run()
	if got != "x" {
		t.Fatalf("got %q", got)
	}
	if v, ok := f.Peek(); !ok || v != "x" {
		t.Fatalf("Peek = %q %v", v, ok)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	f := NewFuture[int](r)
	sum := 0
	for i := 0; i < 5; i++ {
		r.Go("w", func(p *Proc) { sum += Await(p, f) })
	}
	r.Go("s", func(p *Proc) {
		p.Sleep(1)
		f.Set(10)
	})
	r.Run()
	if sum != 50 {
		t.Fatalf("sum = %d, want 50", sum)
	}
}

func TestFutureSetTwicePanics(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	f := NewFuture[int](r)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Set did not panic")
		}
	}()
	f.Set(2)
}

func TestQueueFIFO(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	q := NewQueue[int](r)
	var got []int
	r.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	r.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1)
			q.Push(i * 10)
		}
	})
	r.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got = %v", got)
	}
}

func TestQueuePushBeforePop(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	q := NewQueue[string](r)
	q.Push("early")
	var got string
	r.Go("c", func(p *Proc) { got = q.Pop(p) })
	r.Run()
	if got != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	q := NewQueue[int](r)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty returned ok")
	}
	q.Push(5)
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != 5 {
		t.Fatalf("TryPop = %v %v", v, ok)
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	q := NewQueue[int](r)
	var order []string
	r.Go("c1", func(p *Proc) {
		v := q.Pop(p)
		order = append(order, "c1")
		_ = v
	})
	r.Go("c2", func(p *Proc) {
		v := q.Pop(p)
		order = append(order, "c2")
		_ = v
	})
	r.Go("prod", func(p *Proc) {
		p.Sleep(1)
		q.Push(1)
		p.Sleep(1)
		q.Push(2)
	})
	r.Run()
	if strings.Join(order, ",") != "c1,c2" {
		t.Fatalf("consumer order = %v", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	f := NewFuture[int](r)
	r.Go("stuck", func(p *Proc) { Await(p, f) })
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("deadlocked run did not panic")
		}
		if !strings.Contains(msg.(string), "stuck") {
			t.Fatalf("panic message missing proc name: %v", msg)
		}
	}()
	r.Run()
}

func TestRunUntilLeavesParkedProcs(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	done := false
	r.Go("late", func(p *Proc) {
		p.Sleep(100)
		done = true
	})
	r.RunUntil(50)
	if done {
		t.Fatal("proc completed early")
	}
	if r.Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", r.Parked())
	}
	r.Run()
	if !done {
		t.Fatal("proc never completed")
	}
}

func TestNestedGo(t *testing.T) {
	eng := simclock.NewEngine()
	r := New(eng)
	var trace []string
	r.Go("parent", func(p *Proc) {
		p.Sleep(1)
		child := NewFuture[bool](r)
		r.Go("child", func(c *Proc) {
			c.Sleep(2)
			trace = append(trace, "child@3")
			child.Set(true)
		})
		Await(p, child)
		trace = append(trace, "parent@3")
	})
	r.Run()
	if got := strings.Join(trace, ","); got != "child@3,parent@3" {
		t.Fatalf("trace = %s", got)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		eng := simclock.NewEngine()
		r := New(eng)
		var trace []string
		q := NewQueue[int](r)
		for i := 0; i < 10; i++ {
			i := i
			r.Go("p", func(p *Proc) {
				p.Sleep(float64(i % 3))
				q.Push(i)
				p.Sleep(0.5)
				trace = append(trace, p.Name())
			})
		}
		r.Go("drain", func(p *Proc) {
			for i := 0; i < 10; i++ {
				v := q.Pop(p)
				trace = append(trace, string(rune('0'+v)))
			}
		})
		r.Run()
		return trace
	}
	a := run()
	b := run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
	}
}
