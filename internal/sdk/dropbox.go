package sdk

import (
	"encoding/json"
	"fmt"

	"detournet/internal/cloudsim"
	"detournet/internal/simclock"
	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Dropbox is the API-v2 client: single-shot upload for files that fit in
// one chunk, upload sessions (start / append_v2 / finish) otherwise,
// with the 4 MiB chunks of the 2015 Java SDK.
type Dropbox struct {
	base
}

// NewDropbox returns a Dropbox client dialing from `from` to `host`.
func NewDropbox(eng *simclock.Engine, tn *transport.Net, from, host string, creds Credentials, opts Options) *Dropbox {
	return &Dropbox{base: newBase(eng, tn, from, host, creds, cloudsim.Dropbox, opts)}
}

// ProviderName implements Client.
func (d *Dropbox) ProviderName() string { return "Dropbox" }

func (d *Dropbox) apiCall(p *simproc.Proc, path string, arg any, bodySize float64, md5, attempt string) ([]byte, error) {
	req, err := d.authed(p, "POST", path)
	if err != nil {
		return nil, err
	}
	argJSON, err := json.Marshal(arg)
	if err != nil {
		return nil, err
	}
	req.Header["Dropbox-API-Arg"] = string(argJSON)
	req.Header["Content-Type"] = "application/octet-stream"
	if md5 != "" {
		req.Header["X-Content-MD5"] = md5
	}
	tagAttempt(req, attempt)
	req.BodySize = bodySize
	resp, err := d.do(p, req)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

type dbxCursor struct {
	SessionID string  `json:"session_id"`
	Offset    float64 `json:"offset"`
}

// Upload implements Client.
func (d *Dropbox) Upload(p *simproc.Proc, name string, size float64, md5 string) (FileInfo, error) {
	if size < 0 {
		return FileInfo{}, fmt.Errorf("sdk: negative size")
	}
	attempt := d.attemptID // captured before I/O: the client may be shared
	if size <= d.chunk {
		body, err := d.apiCall(p, "/2/files/upload", map[string]string{"path": name}, size, md5, attempt)
		if err != nil {
			return FileInfo{}, fmt.Errorf("sdk: dropbox upload: %w", err)
		}
		return decodeMeta(body)
	}
	// Session: start carries the first chunk.
	first := d.chunk
	body, err := d.apiCall(p, "/2/files/upload_session/start", map[string]any{}, first, "", "")
	if err != nil {
		return FileInfo{}, fmt.Errorf("sdk: dropbox session start: %w", err)
	}
	var start struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &start); err != nil || start.SessionID == "" {
		return FileInfo{}, fmt.Errorf("sdk: dropbox session start: bad response")
	}
	sent := first
	for size-sent > d.chunk {
		arg := map[string]any{"cursor": dbxCursor{SessionID: start.SessionID, Offset: sent}}
		if _, err := d.apiCall(p, "/2/files/upload_session/append_v2", arg, d.chunk, "", ""); err != nil {
			return FileInfo{}, fmt.Errorf("sdk: dropbox append at %.0f: %w", sent, err)
		}
		sent += d.chunk
	}
	arg := map[string]any{
		"cursor": dbxCursor{SessionID: start.SessionID, Offset: sent},
		"commit": map[string]string{"path": name},
	}
	body, err = d.apiCall(p, "/2/files/upload_session/finish", arg, size-sent, md5, attempt)
	if err != nil {
		return FileInfo{}, fmt.Errorf("sdk: dropbox finish: %w", err)
	}
	return decodeMeta(body)
}

// Download implements Client.
func (d *Dropbox) Download(p *simproc.Proc, name string) (FileInfo, error) {
	req, err := d.authed(p, "POST", "/2/files/download")
	if err != nil {
		return FileInfo{}, err
	}
	argJSON, _ := json.Marshal(map[string]string{"path": name})
	req.Header["Dropbox-API-Arg"] = string(argJSON)
	resp, err := d.do(p, req)
	if err != nil {
		return FileInfo{}, err
	}
	var fi FileInfo
	if raw, ok := resp.Header["Dropbox-API-Result"]; ok {
		if err := json.Unmarshal([]byte(raw), &fi); err != nil {
			return FileInfo{}, fmt.Errorf("sdk: bad Dropbox-API-Result: %w", err)
		}
	}
	fi.Size = resp.BodySize
	return fi, nil
}

// Delete implements Client.
func (d *Dropbox) Delete(p *simproc.Proc, name string) error {
	_, err := d.apiCall(p, "/2/files/delete_v2", map[string]string{"path": name}, 0, "", "")
	return err
}

var _ Client = (*Dropbox)(nil)
