package cloudsim

import "testing"

// FuzzParseContentRange must never panic and must reject inverted or
// malformed ranges.
func FuzzParseContentRange(f *testing.F) {
	f.Add("bytes 0-99/1000")
	f.Add("bytes 100-199/*")
	f.Add("bytes 5-2/10")
	f.Add("")
	f.Add("octets 1-2/3")
	f.Add("bytes -1-2/3")
	f.Fuzz(func(t *testing.T, s string) {
		lo, hi, _, err := parseContentRange(s)
		if err == nil {
			if lo < 0 || hi < lo {
				t.Fatalf("accepted invalid range %q -> %v %v", s, lo, hi)
			}
		}
	})
}
