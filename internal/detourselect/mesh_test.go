package detourselect

import (
	"testing"

	"detournet/internal/core"
	"detournet/internal/overlay"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

// meshWorld wires an overlay over the client + DTN hosts of the
// scenario world so monitoring stats exist for the hop1 legs.
func meshWorld(t *testing.T, seed int64, client string) (*scenario.World, *overlay.Mesh) {
	t.Helper()
	w := scenario.Build(seed)
	members := append([]string{client}, scenario.DTNs...)
	for _, m := range members {
		overlay.NewDaemon(w.Net, m).Start()
	}
	return w, overlay.NewMesh(w.Net, client, members)
}

func TestChooseFromMeshMatchesProbedChoice(t *testing.T) {
	w, mesh := meshWorld(t, 61, scenario.UBC)
	w.RunWorkload("mesh-select", func(p *simproc.Proc) {
		if err := mesh.ProbeAll(p); err != nil {
			t.Error(err)
			return
		}
		direct := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		defer direct.Close()
		detours := map[string]*core.DetourClient{
			scenario.UAlberta: w.NewDetourClient(scenario.UBC, scenario.UAlberta),
			scenario.UMich:    w.NewDetourClient(scenario.UBC, scenario.UMich),
		}
		sel := NewSelector()
		meshRoute, meshPreds, err := sel.ChooseFromMesh(p, mesh, direct, detours, scenario.GoogleDrive, 100e6)
		if err != nil {
			t.Error(err)
			return
		}
		if meshRoute != core.ViaRoute(scenario.UAlberta) {
			t.Errorf("mesh-driven choice = %v, want via ualberta; preds=%+v", meshRoute, meshPreds)
		}
		// All three candidates predicted (mesh had stats for both DTNs).
		if len(meshPreds) != 3 {
			t.Errorf("predictions = %d, want 3", len(meshPreds))
		}
	})
}

func TestChooseFromMeshSkipsUnmonitoredDTNs(t *testing.T) {
	w, mesh := meshWorld(t, 62, scenario.UBC)
	w.RunWorkload("mesh-partial", func(p *simproc.Proc) {
		// Probe only the UAlberta leg.
		if _, err := mesh.Probe(p, scenario.UBC, scenario.UAlberta); err != nil {
			t.Error(err)
			return
		}
		direct := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		defer direct.Close()
		detours := map[string]*core.DetourClient{
			scenario.UAlberta: w.NewDetourClient(scenario.UBC, scenario.UAlberta),
			scenario.UMich:    w.NewDetourClient(scenario.UBC, scenario.UMich),
		}
		_, preds, err := NewSelector().ChooseFromMesh(p, mesh, direct, detours, scenario.GoogleDrive, 60e6)
		if err != nil {
			t.Error(err)
			return
		}
		// Direct + via-UAlberta only: the unmonitored UMich leg is skipped.
		if len(preds) != 2 {
			t.Errorf("predictions = %d, want 2 (UMich unmonitored): %+v", len(preds), preds)
		}
		for _, pr := range preds {
			if pr.Route == core.ViaRoute(scenario.UMich) {
				t.Errorf("unmonitored DTN predicted: %+v", pr)
			}
		}
	})
}

func TestChooseFromMeshValidation(t *testing.T) {
	w, mesh := meshWorld(t, 63, scenario.UBC)
	w.RunWorkload("mesh-bad", func(p *simproc.Proc) {
		direct := w.NewSDKClient(scenario.UBC, scenario.GoogleDrive)
		defer direct.Close()
		sel := NewSelector()
		if _, _, err := sel.ChooseFromMesh(p, mesh, direct, nil, scenario.GoogleDrive, 0); err == nil {
			t.Error("zero size accepted")
		}
		if _, _, err := sel.ChooseFromMesh(p, nil, direct, nil, scenario.GoogleDrive, 1e6); err == nil {
			t.Error("nil mesh accepted")
		}
	})
}
