package sched

import (
	"math/rand"
	"sync"

	"detournet/internal/core"
	"detournet/internal/detourselect"
)

// CacheKey identifies one route decision. Size enters through a coarse
// bucket because the best route depends on file size (the paper's
// central size-dependence result), but caching per exact byte count
// would never hit.
type CacheKey struct {
	Client   string
	Provider string
	// SizeBucket is a base-4 magnitude bucket of the file size (see
	// SizeBucket).
	SizeBucket int
}

// SizeBucket buckets a byte count: 0 for sub-megabyte files, then one
// bucket per 4x of size (1–4 MB, 4–16 MB, 16–64 MB, ...), capped at 8.
// Within a bucket the ranking of routes is stable even though absolute
// times differ.
func SizeBucket(bytes float64) int {
	mb := bytes / 1e6
	b := 0
	for mb >= 1 && b < 8 {
		mb /= 4
		b++
	}
	return b
}

// KeyFor builds the cache key for one transfer.
func KeyFor(client, provider string, size float64) CacheKey {
	return CacheKey{Client: client, Provider: provider, SizeBucket: SizeBucket(size)}
}

// entry is one cached decision plus the online state that refines it.
type entry struct {
	route      core.Route
	expires    float64
	candidates []core.Route
	// bandit keeps per-route throughput estimates from completed
	// transfers, so repeated traffic refreshes the decision without
	// re-probing.
	bandit *detourselect.Bandit
	// quarantined benches failed detours until the given clock time.
	quarantined map[core.Route]float64
}

// RouteCache caches route decisions with TTL expiry, failure-driven
// invalidation, and bandit-driven refresh. It is safe for concurrent
// use.
type RouteCache struct {
	mu          sync.Mutex
	ttl         float64
	quarantine  float64
	now         func() float64
	rng         *rand.Rand
	entries     map[CacheKey]*entry
	hits        int64
	misses      int64
	invalidates int64
}

// NewRouteCache builds a cache. ttl and quarantineTTL are in the
// clock's seconds; now is the clock; rng feeds the bandits.
func NewRouteCache(ttl, quarantineTTL float64, now func() float64, rng *rand.Rand) *RouteCache {
	if ttl <= 0 {
		panic("sched: non-positive cache TTL")
	}
	if now == nil {
		panic("sched: RouteCache needs a clock")
	}
	if quarantineTTL <= 0 {
		quarantineTTL = ttl
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &RouteCache{
		ttl: ttl, quarantine: quarantineTTL, now: now, rng: rng,
		entries: make(map[CacheKey]*entry),
	}
}

// Lookup returns the cached route for a key. A hit means the caller
// skips probing entirely — including when the cached detour is
// quarantined, in which case the entry has already been switched to
// direct.
func (c *RouteCache) Lookup(k CacheKey) (core.Route, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || c.now() >= e.expires {
		if ok {
			delete(c.entries, k)
		}
		c.misses++
		return core.Route{}, false
	}
	c.hits++
	return e.route, true
}

// LookupStale returns the cached route for a key even when the entry's
// TTL has lapsed, without deleting it — brownout mode's degraded read:
// a stale decision beats paying a probe while the scheduler is
// overloaded. fresh reports whether the entry was still within TTL.
// Hit/miss counters are untouched; the caller accounts for stale serves
// itself.
func (c *RouteCache) LookupStale(k CacheKey) (route core.Route, fresh, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, present := c.entries[k]
	if !present {
		return core.Route{}, false, false
	}
	return e.route, c.now() < e.expires, true
}

// Insert stores a fresh decision for the TTL. candidates (may be nil)
// are the routes the planner considered; they seed the bandit that
// refines the decision from live traffic.
func (c *RouteCache) Insert(k CacheKey, route core.Route, candidates []core.Route) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &entry{
		route:       route,
		expires:     c.now() + c.ttl,
		candidates:  append([]core.Route(nil), candidates...),
		quarantined: make(map[core.Route]float64),
	}
	if len(e.candidates) > 0 {
		e.bandit = detourselect.NewBanditRand(e.candidates, c.rng)
	}
	c.entries[k] = e
}

// Observe feeds a completed transfer back into the key's bandit and
// lets the observed throughputs re-elect the cached route — repeated
// traffic keeps the decision fresh without new probes.
func (c *RouteCache) Observe(k CacheKey, route core.Route, sizeBytes, seconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || e.bandit == nil {
		return
	}
	e.bandit.Observe(route, sizeBytes, seconds)
	now := c.now()
	best, bestT := e.route, -1.0
	for _, r := range e.candidates {
		if until, q := e.quarantined[r]; q && now < until {
			continue
		}
		if t := e.bandit.Throughput(r); t > bestT {
			best, bestT = r, t
		}
	}
	if bestT > 0 {
		e.route = best
	}
}

// Invalidate benches a failed route for the quarantine TTL. If it was
// the cached decision, the entry switches to direct immediately — the
// fleet stops sending traffic into a dead DTN without waiting for
// expiry. Invalidating a direct route drops the whole entry (the next
// job re-plans).
func (c *RouteCache) Invalidate(k CacheKey, failed core.Route) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return
	}
	c.invalidates++
	if failed.Kind == core.Direct {
		delete(c.entries, k)
		return
	}
	e.quarantined[failed] = c.now() + c.quarantine
	if e.route == failed {
		e.route = core.DirectRoute
	}
}

// Candidates returns the key's non-quarantined candidate routes (nil
// when the key is absent) — the failover pool a job can switch to
// mid-flight when its chosen route dies underneath it.
func (c *RouteCache) Candidates(k CacheKey) []core.Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil
	}
	now := c.now()
	out := make([]core.Route, 0, len(e.candidates))
	for _, r := range e.candidates {
		if until, q := e.quarantined[r]; q && now < until {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Len reports live (possibly expired-but-unswept) entries.
func (c *RouteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters returns lifetime hits, misses, and invalidations.
func (c *RouteCache) Counters() (hits, misses, invalidations int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidates
}

// HitRate is hits/(hits+misses), 0 before any lookup.
func (c *RouteCache) HitRate() float64 {
	h, m, _ := c.Counters()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
