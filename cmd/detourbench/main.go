// Command detourbench regenerates every table and figure of the paper's
// evaluation from the simulated world and prints them as text.
//
// Usage:
//
//	detourbench [-experiment all|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table1|table2|table3|table4|table5]
//	            [-seed N] [-runs N] [-keep N] [-sizes 10,20,...] [-quick]
//
// The default -seed 2015 with the full protocol reproduces the values
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"detournet/internal/experiments"
	"detournet/internal/measure"
	"detournet/internal/report"
	"detournet/internal/scenario"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "which experiment to run (all, fig2..fig11, table1..table5, dump, workload, download, sensitivity, contention, report, bench)")
		seed   = flag.Int64("seed", 2015, "world seed (cross-traffic, jitter)")
		runs   = flag.Int("runs", 7, "runs per measurement cell")
		keep   = flag.Int("keep", 5, "runs retained for the mean (last N)")
		sizes  = flag.String("sizes", "", "comma-separated file sizes in MB (default: paper's 10,20,30,40,50,60,100)")
		quick  = flag.Bool("quick", false, "reduced protocol (3 sizes, 3 runs) for a fast smoke run")
		format = flag.String("format", "csv", "output format for -experiment dump: csv or json")
		out    = flag.String("out", "BENCH_10.json", "output path for -experiment bench")
	)
	flag.Parse()

	if *which == "bench" {
		if err := runBenchSweep(*seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "detourbench: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	o := experiments.Options{Seed: *seed, Runs: *runs, Keep: *keep}
	if *quick {
		o = experiments.Quick()
		o.Seed = *seed
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || mb <= 0 {
				fmt.Fprintf(os.Stderr, "detourbench: bad size %q\n", s)
				os.Exit(2)
			}
			o.SizesMB = append(o.SizesMB, mb)
		}
	}
	suite := &experiments.Suite{Options: o}

	runners := map[string]func() string{
		"fig2":   suite.Fig2,
		"fig3":   suite.Fig3,
		"fig4":   suite.Fig4,
		"fig5":   suite.Fig5,
		"fig6":   suite.Fig6,
		"fig7":   suite.Fig7,
		"fig8":   suite.Fig8,
		"fig9":   suite.Fig9,
		"fig10":  suite.Fig10,
		"fig11":  suite.Fig11,
		"table1": suite.TableI,
		"table2": suite.TableII,
		"table3": suite.TableIII,
		"table4": suite.TableIV,
		"table5": suite.TableV,
	}
	order := []string{"fig2", "table2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "table3", "fig8", "fig9", "table4", "fig10", "fig11", "table1", "table5"}

	if *which == "report" {
		if err := report.Write(os.Stdout, report.Config{Options: o, Extensions: true}); err != nil {
			fmt.Fprintf(os.Stderr, "detourbench: report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *which == "download" {
		// Extension: the reverse direction for every client, Google Drive.
		for _, c := range scenario.Clients {
			w := scenario.Build(o.Seed)
			g := measure.RunGrid(w, measure.GridSpec{
				Client: c, Provider: scenario.GoogleDrive,
				Direction: measure.Download,
				SizesMB:   o.SizesMB, Runs: o.Runs, Keep: o.Keep, Seed: o.Seed,
			})
			fmt.Printf("Download times %s <- GoogleDrive\n%s\n", c, g.FormatTable())
		}
		return
	}
	if *which == "sensitivity" {
		points := experiments.SensitivityPacificWave(o, []float64{0.6, 1.25, 2.5, 4, 6, 8})
		fmt.Println(experiments.FormatSensitivity(points))
		return
	}
	if *which == "contention" {
		results, err := experiments.ContentionStudy(o, [][]string{
			{scenario.UBC},
			{scenario.UBC, scenario.Purdue},
			{scenario.UBC, scenario.Purdue, scenario.UCLA},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "detourbench: contention: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatContention(results))
		return
	}
	if *which == "workload" {
		for _, c := range scenario.Clients {
			results, err := experiments.WorkloadStudy(o, c, scenario.GoogleDrive, 12)
			if err != nil {
				fmt.Fprintf(os.Stderr, "detourbench: workload: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(experiments.FormatWorkloadStudy(c, scenario.GoogleDrive, results))
		}
		return
	}
	if *which == "dump" {
		// Machine-readable export of every grid, for plotting.
		for _, c := range scenario.Clients {
			for _, p := range scenario.ProviderNames {
				pr := experiments.RunPair(o, c, p)
				var err error
				if *format == "json" {
					err = pr.Grid.WriteJSON(os.Stdout)
				} else {
					err = pr.Grid.WriteCSV(os.Stdout)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "detourbench: export: %v\n", err)
					os.Exit(1)
				}
			}
		}
		return
	}
	if *which == "all" {
		for _, name := range order {
			fmt.Println(runners[name]())
			fmt.Println()
		}
		return
	}
	fn, ok := runners[strings.ToLower(*which)]
	if !ok {
		fmt.Fprintf(os.Stderr, "detourbench: unknown experiment %q (want all, %s)\n",
			*which, strings.Join(order, ", "))
		os.Exit(2)
	}
	fmt.Println(fn())
}
