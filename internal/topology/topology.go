// Package topology models the wide-area network graph of the case study:
// hosts and routers (with the IPs and reverse-DNS names that appear in
// the paper's traceroutes), unidirectional links realized as fluid links,
// per-domain ownership, and route computation.
//
// Route selection is pluggable: the default is delay-weighted Dijkstra,
// package bgppol layers valley-free inter-domain policy on top, and
// explicit per-pair overrides pin the handful of paths the paper observed
// directly (e.g. UBC's PacificWave hand-off to Google).
package topology

import (
	"fmt"
	"math"
	"sort"

	"detournet/internal/fluid"
	"detournet/internal/geo"
)

// NodeKind distinguishes end hosts from routers.
type NodeKind int

const (
	// Host is a traffic source or sink (client machines, DTNs, servers).
	Host NodeKind = iota
	// Router only forwards.
	Router
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "router"
}

// Node is a host or router in the topology.
type Node struct {
	Name     string // unique key, e.g. "ubc-pl" or "vncv1rtr2"
	Hostname string // reverse-DNS name shown by traceroute
	IP       string // primary interface address
	Kind     NodeKind
	Domain   string // owning network domain, e.g. "CANARIE"
	Site     geo.Site

	// RespondsICMP controls traceroute visibility; false renders the
	// paper's "* * *" hops (Fig 6 hops 2 and 10).
	RespondsICMP bool
}

// Edge is one direction of an adjacency, carrying the fluid link that
// transfers bytes over it.
type Edge struct {
	From, To *Node
	Link     *fluid.Link
	down     bool
}

// Down reports whether the edge is administratively down.
func (e *Edge) Down() bool { return e.down }

// LinkSpec describes one direction of a link.
type LinkSpec struct {
	// CapacityBps is the capacity in bytes per second (not bits).
	CapacityBps float64
	// DelaySec is one-way propagation delay in seconds. If zero it is
	// derived from the endpoints' site coordinates.
	DelaySec float64
	// PerFlowCapBps, when positive, caps each flow crossing the link
	// individually (a stateful-firewall model; see fluid.Link.FlowCap).
	PerFlowCapBps float64
}

// Graph is the network topology bound to a fluid network.
type Graph struct {
	fl    *fluid.Network
	nodes map[string]*Node
	order []string           // node names in insertion order, for determinism
	out   map[string][]*Edge // adjacency, sorted by target name

	overrides    map[pair][]string // explicit routed node paths
	overridesOff map[pair]bool     // administratively suspended pins
	overrideVeto func(hops []*Node) bool

	router PathFinder

	// OnFlowKilled, when set, observes every in-flight fluid flow torn
	// down by SetLinkState taking an edge down, KillEdgeFlows, or
	// KillDomainBoundaryFlows. It runs inside the simulation, after the
	// flow's own OnAbort callback.
	OnFlowKilled func(from, to string, f *fluid.Flow)
}

type pair struct{ src, dst string }

// PathFinder computes a node path from src to dst. Implementations must
// be deterministic.
type PathFinder interface {
	Path(g *Graph, src, dst *Node) ([]*Node, error)
}

// New returns an empty graph over the fluid network. The default router
// is delay-weighted Dijkstra.
func New(fl *fluid.Network) *Graph {
	if fl == nil {
		panic("topology: nil fluid network")
	}
	return &Graph{
		fl:        fl,
		nodes:     make(map[string]*Node),
		out:       make(map[string][]*Edge),
		overrides: make(map[pair][]string),
		router:    MinDelay{},
	}
}

// Fluid returns the underlying fluid network.
func (g *Graph) Fluid() *fluid.Network { return g.fl }

// SetRouter installs the route computation strategy.
func (g *Graph) SetRouter(r PathFinder) {
	if r == nil {
		panic("topology: nil router")
	}
	g.router = r
}

// AddNode registers a node. Duplicate names are an error.
func (g *Graph) AddNode(n *Node) (*Node, error) {
	if n == nil || n.Name == "" {
		return nil, fmt.Errorf("topology: node must have a name")
	}
	if _, ok := g.nodes[n.Name]; ok {
		return nil, fmt.Errorf("topology: duplicate node %q", n.Name)
	}
	if n.Hostname == "" {
		n.Hostname = n.Name
	}
	g.nodes[n.Name] = n
	g.order = append(g.order, n.Name)
	return n, nil
}

// MustAddNode is AddNode for static topologies; it panics on error.
func (g *Graph) MustAddNode(n *Node) *Node {
	node, err := g.AddNode(n)
	if err != nil {
		panic(err)
	}
	return node
}

// Node returns a node by name.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.nodes[name]
	return n, ok
}

// MustNode returns a node by name, panicking if absent.
func (g *Graph) MustNode(name string) *Node {
	n, ok := g.nodes[name]
	if !ok {
		panic(fmt.Sprintf("topology: unknown node %q", name))
	}
	return n
}

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, name := range g.order {
		out[i] = g.nodes[name]
	}
	return out
}

// Connect adds a bidirectional adjacency with symmetric specs.
func (g *Graph) Connect(a, b string, spec LinkSpec) error {
	if err := g.ConnectAsym(a, b, spec); err != nil {
		return err
	}
	return g.ConnectAsym(b, a, spec)
}

// MustConnect is Connect, panicking on error.
func (g *Graph) MustConnect(a, b string, spec LinkSpec) {
	if err := g.Connect(a, b, spec); err != nil {
		panic(err)
	}
}

// ConnectAsym adds one direction of an adjacency.
func (g *Graph) ConnectAsym(from, to string, spec LinkSpec) error {
	fn, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("topology: unknown node %q", from)
	}
	tn, ok := g.nodes[to]
	if !ok {
		return fmt.Errorf("topology: unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("topology: self-link at %q", from)
	}
	for _, e := range g.out[from] {
		if e.To == tn {
			return fmt.Errorf("topology: duplicate edge %s->%s", from, to)
		}
	}
	if spec.CapacityBps <= 0 {
		return fmt.Errorf("topology: edge %s->%s capacity %v", from, to, spec.CapacityBps)
	}
	delay := spec.DelaySec
	if delay == 0 {
		delay = geo.PropagationDelay(fn.Site.Coord, tn.Site.Coord)
		if delay == 0 {
			delay = 0.0002 // same-site wire
		}
	}
	link := g.fl.AddLink(fmt.Sprintf("%s->%s", from, to), spec.CapacityBps, delay)
	link.FlowCap = spec.PerFlowCapBps
	g.out[from] = append(g.out[from], &Edge{From: fn, To: tn, Link: link})
	sort.Slice(g.out[from], func(i, j int) bool { return g.out[from][i].To.Name < g.out[from][j].To.Name })
	return nil
}

// MustConnectAsym is ConnectAsym, panicking on error.
func (g *Graph) MustConnectAsym(from, to string, spec LinkSpec) {
	if err := g.ConnectAsym(from, to, spec); err != nil {
		panic(err)
	}
}

// Edges returns the out-edges of a node, sorted by target name.
func (g *Graph) Edges(name string) []*Edge {
	return g.out[name]
}

// Edge returns the directed edge from->to.
func (g *Graph) Edge(from, to string) (*Edge, bool) {
	for _, e := range g.out[from] {
		if e.To.Name == to {
			return e, true
		}
	}
	return nil, false
}

// SetLinkState marks one direction of an adjacency up or down. Down
// edges are excluded from route computation, their fluid link is
// crushed to a trickle so any flow started before the teardown below
// lands would stall rather than silently completing, and — the part a
// routing change alone cannot express — every in-flight fluid flow
// traversing the edge is killed, running each flow's OnAbort callback
// and then the graph's OnFlowKilled hook. This is the primary
// failure-injection entry point for resilience tests. It reports
// whether the edge exists.
func (g *Graph) SetLinkState(from, to string, up bool) bool {
	e, ok := g.Edge(from, to)
	if !ok {
		return false
	}
	e.down = !up
	if up {
		g.fl.SetLinkLoad(e.Link, 0)
		return true
	}
	g.fl.SetLinkLoad(e.Link, 1) // clamped to the max load internally
	for _, f := range e.Link.Flows() {
		if g.fl.KillFlow(f) && g.OnFlowKilled != nil {
			g.OnFlowKilled(from, to, f)
		}
	}
	return true
}

// SetOverride pins the route from src to dst to the exact node sequence
// hops (which must start at src, end at dst, and follow existing edges).
// Overrides take precedence over the installed Router and are
// direction-specific.
func (g *Graph) SetOverride(hops ...string) error {
	if len(hops) < 2 {
		return fmt.Errorf("topology: override needs at least 2 hops")
	}
	for i := 0; i+1 < len(hops); i++ {
		if _, ok := g.Edge(hops[i], hops[i+1]); !ok {
			return fmt.Errorf("topology: override hop %s->%s has no edge", hops[i], hops[i+1])
		}
	}
	g.overrides[pair{hops[0], hops[len(hops)-1]}] = append([]string(nil), hops...)
	return nil
}

// MustSetOverride is SetOverride, panicking on error.
func (g *Graph) MustSetOverride(hops ...string) {
	if err := g.SetOverride(hops...); err != nil {
		panic(err)
	}
}

// Override returns the pinned hop sequence for src->dst, if one exists
// (enabled or not).
func (g *Graph) Override(src, dst string) ([]string, bool) {
	hops, ok := g.overrides[pair{src, dst}]
	if !ok {
		return nil, false
	}
	return append([]string(nil), hops...), true
}

// SetOverrideEnabled suspends or restores one pinned route without
// forgetting it — the churn model's "the hand-off flipped away and
// back". While disabled the pair routes through the installed Router.
// It reports whether the override exists.
func (g *Graph) SetOverrideEnabled(src, dst string, enabled bool) bool {
	if _, ok := g.overrides[pair{src, dst}]; !ok {
		return false
	}
	if g.overridesOff == nil {
		g.overridesOff = make(map[pair]bool)
	}
	if enabled {
		delete(g.overridesOff, pair{src, dst})
	} else {
		g.overridesOff[pair{src, dst}] = true
	}
	return true
}

// SetOverrideVeto installs a hook consulted before any pinned route is
// used; returning true makes the pair fall through to the Router. The
// routing plane uses it to break pins whose domain crossings ride a
// withdrawn BGP session.
func (g *Graph) SetOverrideVeto(veto func(hops []*Node) bool) {
	g.overrideVeto = veto
}

// KillEdgeFlows kills every in-flight fluid flow on the from->to edge
// (without taking the link down), running abort callbacks and the
// OnFlowKilled hook. It returns the number of flows killed.
func (g *Graph) KillEdgeFlows(from, to string) int {
	e, ok := g.Edge(from, to)
	if !ok {
		return 0
	}
	n := 0
	for _, f := range e.Link.Flows() {
		if g.fl.KillFlow(f) {
			if g.OnFlowKilled != nil {
				g.OnFlowKilled(from, to, f)
			}
			n++
		}
	}
	return n
}

// KillDomainBoundaryFlows kills every in-flight flow crossing the
// a~b domain boundary in either direction — the data-plane half of a
// BGP session withdrawal, where the forwarding adjacency disappears
// under whatever traffic was riding it. It returns the number of flows
// killed.
func (g *Graph) KillDomainBoundaryFlows(a, b string) int {
	n := 0
	for _, name := range g.order {
		for _, e := range g.out[name] {
			ad, bd := e.From.Domain, e.To.Domain
			if (ad == a && bd == b) || (ad == b && bd == a) {
				n += g.KillEdgeFlows(e.From.Name, e.To.Name)
			}
		}
	}
	return n
}

// Path returns the routed node sequence from src to dst, honouring
// overrides first and the installed Router otherwise.
func (g *Graph) Path(src, dst string) ([]*Node, error) {
	s, ok := g.nodes[src]
	if !ok {
		return nil, fmt.Errorf("topology: unknown src %q", src)
	}
	d, ok := g.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("topology: unknown dst %q", dst)
	}
	if src == dst {
		return []*Node{s}, nil
	}
	if hops, ok := g.overrides[pair{src, dst}]; ok && !g.overridesOff[pair{src, dst}] && g.overrideUsable(hops) {
		out := make([]*Node, len(hops))
		for i, h := range hops {
			out[i] = g.nodes[h]
		}
		return out, nil
	}
	return g.router.Path(g, s, d)
}

// overrideUsable reports whether every edge of a pinned path is up and
// the veto hook (if any) allows it; otherwise the override falls
// through to the installed Router so failover can route around the
// failure.
func (g *Graph) overrideUsable(hops []string) bool {
	for i := 0; i+1 < len(hops); i++ {
		if e, ok := g.Edge(hops[i], hops[i+1]); !ok || e.down {
			return false
		}
	}
	if g.overrideVeto != nil {
		nodes := make([]*Node, len(hops))
		for i, h := range hops {
			nodes[i] = g.nodes[h]
		}
		if g.overrideVeto(nodes) {
			return false
		}
	}
	return true
}

// LinkPath converts a routed node sequence into the fluid links it
// traverses, the form StartFlow consumes.
func (g *Graph) LinkPath(nodes []*Node) ([]*fluid.Link, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("topology: link path needs at least 2 nodes")
	}
	out := make([]*fluid.Link, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		e, ok := g.Edge(nodes[i].Name, nodes[i+1].Name)
		if !ok {
			return nil, fmt.Errorf("topology: no edge %s->%s", nodes[i].Name, nodes[i+1].Name)
		}
		out = append(out, e.Link)
	}
	return out, nil
}

// RoutedLinks combines Path and LinkPath.
func (g *Graph) RoutedLinks(src, dst string) ([]*fluid.Link, error) {
	nodes, err := g.Path(src, dst)
	if err != nil {
		return nil, err
	}
	return g.LinkPath(nodes)
}

// RTT returns the round-trip propagation delay between two nodes along
// the currently routed forward and reverse paths.
func (g *Graph) RTT(a, b string) (float64, error) {
	fwd, err := g.RoutedLinks(a, b)
	if err != nil {
		return 0, err
	}
	rev, err := g.RoutedLinks(b, a)
	if err != nil {
		return 0, err
	}
	return fluid.PathDelay(fwd) + fluid.PathDelay(rev), nil
}

// MinDelay is the default PathFinder: Dijkstra weighted by link propagation
// delay, with deterministic lexicographic tie-breaking.
type MinDelay struct{}

// Path implements PathFinder.
func (MinDelay) Path(g *Graph, src, dst *Node) ([]*Node, error) {
	return dijkstra(g, src, dst, func(e *Edge) float64 { return e.Link.PropDelay }, nil)
}

// EdgeFilter decides whether a route from src to dst may use edge e.
type EdgeFilter func(e *Edge, src, dst *Node) bool

// MinDelayFiltered is delay-weighted Dijkstra restricted to edges the
// filter admits — the hook for lightweight routing policy such as
// "provider (stub) domains do not carry transit traffic", which on the
// real Internet is enforced by BGP export rules (see package bgppol for
// the full model).
type MinDelayFiltered struct {
	Allow EdgeFilter
}

// Path implements PathFinder.
func (r MinDelayFiltered) Path(g *Graph, src, dst *Node) ([]*Node, error) {
	if r.Allow == nil {
		return nil, fmt.Errorf("topology: MinDelayFiltered with nil filter")
	}
	return dijkstra(g, src, dst, func(e *Edge) float64 { return e.Link.PropDelay }, r.Allow)
}

// NoStubTransit returns an EdgeFilter that keeps routes out of the given
// stub domains except when the route originates or terminates there.
func NoStubTransit(stubDomains ...string) EdgeFilter {
	stubs := make(map[string]bool, len(stubDomains))
	for _, d := range stubDomains {
		stubs[d] = true
	}
	return func(e *Edge, src, dst *Node) bool {
		d := e.To.Domain
		if !stubs[d] {
			return true
		}
		return d == src.Domain || d == dst.Domain
	}
}

// WeightFunc scores an edge for MinWeight routing; lower is preferred.
type WeightFunc func(e *Edge) float64

// MinWeight routes by an arbitrary edge weight.
type MinWeight struct{ Weight WeightFunc }

// Path implements PathFinder.
func (r MinWeight) Path(g *Graph, src, dst *Node) ([]*Node, error) {
	if r.Weight == nil {
		return nil, fmt.Errorf("topology: MinWeight with nil weight func")
	}
	return dijkstra(g, src, dst, r.Weight, nil)
}

func dijkstra(g *Graph, src, dst *Node, w WeightFunc, allow EdgeFilter) ([]*Node, error) {
	const unreached = math.MaxFloat64
	dist := make(map[string]float64, len(g.nodes))
	prev := make(map[string]string, len(g.nodes))
	visited := make(map[string]bool, len(g.nodes))
	for name := range g.nodes {
		dist[name] = unreached
	}
	dist[src.Name] = 0
	for {
		// Linear extract-min over insertion order: topologies here have
		// tens of nodes, and insertion order makes ties deterministic.
		cur := ""
		best := unreached
		for _, name := range g.order {
			if !visited[name] && dist[name] < best {
				best = dist[name]
				cur = name
			}
		}
		if cur == "" {
			return nil, fmt.Errorf("topology: no route %s -> %s", src.Name, dst.Name)
		}
		if cur == dst.Name {
			break
		}
		visited[cur] = true
		for _, e := range g.out[cur] {
			if e.down {
				continue
			}
			if allow != nil && !allow(e, src, dst) {
				continue
			}
			ew := w(e)
			if ew < 0 {
				return nil, fmt.Errorf("topology: negative weight on %s->%s", e.From.Name, e.To.Name)
			}
			if nd := dist[cur] + ew; nd < dist[e.To.Name] {
				dist[e.To.Name] = nd
				prev[e.To.Name] = cur
			}
		}
	}
	var rev []string
	for at := dst.Name; at != src.Name; at = prev[at] {
		rev = append(rev, at)
		if _, ok := prev[at]; !ok && at != src.Name {
			return nil, fmt.Errorf("topology: no route %s -> %s", src.Name, dst.Name)
		}
	}
	out := make([]*Node, 0, len(rev)+1)
	out = append(out, src)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, g.nodes[rev[i]])
	}
	return out, nil
}

// PathNames renders a node path as names, for tests and diagnostics.
func PathNames(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}
