// Command detourd runs the transfer-scheduler control plane as a
// daemon against the simulated topology: it generates a multi-tenant
// fleet trace, admits it through per-tenant rate limits, drains it
// through the worker pool under per-provider and per-DTN concurrency
// caps, and logs periodic one-line status snapshots while it works —
// the operational mode the paper's per-invocation measurement programs
// stop short of.
//
// Usage:
//
//	detourd [-jobs 600] [-workers 8] [-seed 2015]
//	        [-provider-cap 4] [-dtn-cap 2] [-tenant-rate 0]
//	        [-stats 2s] [-chaos] [-overload]
//
// With -chaos, the canned fault schedule (see internal/faults) plays
// against the world while the trace drains: links flap and degrade,
// providers throw outages and error bursts, a DTN crashes. The
// scheduler runs with checkpointed resume and circuit breakers, retry
// backoff spends virtual time, and the final report adds recovery
// accounting. Failed jobs are expected under chaos and do not fail the
// process.
//
// With -overload, the full overload-control stack arms: a bounded
// queue with per-tenant quotas (the trace loop back-pressures through
// SubmitWait instead of dropping), CoDel-style queue-delay shedding,
// weighted DRR fair queuing, hedged transfers, and brownout
// degradation. Every job gets a deadline of 60 virtual seconds from
// admission, so queue-rotted work expires instead of burning capacity.
// Shed and expired jobs are expected under overload and do not fail
// the process.
//
// With -churn, the daemon instead replays the BGP reconvergence storm
// (see internal/faults.ChurnSchedule) twice over the same fleet and
// seed — once as an ablated control and once with the full churn stack:
// staged per-domain convergence with transient blackholes, push-based
// route invalidation off the event bus, make-before-break rerouting of
// in-flight transfers, parking on total route loss, and a DTN drain —
// and prints the deterministic with/without report. Other scheduler
// flags are ignored in this mode.
//
// With -grayfail, the daemon instead replays the gray-failure schedule
// (see internal/faults.GrayfailSchedule) twice over the same fleet and
// seed — once as the DisableHealth ablation and once with the health
// stack: stall watchdogs with adaptive budgets, outlier ejection with
// canary re-admission, and per-provider retry budgets — and prints the
// deterministic with/without report. Other scheduler flags are ignored
// in this mode.
//
// With -pressure, the daemon instead replays the storage-exhaustion
// schedule (see internal/faults.PressureSchedule) twice over the same
// fleet and seed — once as the no-mitigation ablation and once with the
// full ladder: LRU eviction of stale staged state, spill-aware
// placement off DTN headroom, provider-session reclamation on 507,
// spill to alternate providers, and journal degradation to in-memory
// folding — and prints the deterministic with/without report. Other
// scheduler flags are ignored in this mode.
//
// With -crashsafe, the daemon instead runs the crash-consistency sweep
// (see internal/sched.RunCrashsafeSweep): a journaled scheduler killed
// at every enumerated control-plane crash point, restarted on the same
// journal, and required to converge byte-identical to the crash-free
// control with zero duplicate provider commits — plus the storage-decay
// arm. Other scheduler flags are ignored in this mode.
//
// With -multipath, the daemon instead runs the striped-transfer
// comparison (see internal/sched.RunMultipath): every site/provider
// pair measured over each single route and then striped across direct
// + detours through JobMultipath, plus the churn leg that drives one
// large striped transfer into the reconvergence storm. Other scheduler
// flags are ignored in this mode.
//
// With -telemetry, the daemon instead replays the instrumented flash
// crowd (see internal/sched.RunTelemetry) against the reconvergence
// storm with the full observability plane attached — metrics registry,
// virtual-clock sampler, per-job flight recorder — printing a compact
// telemetry line every -dump-every virtual seconds while it drains and
// the full deterministic report (time series, failed-job decision
// traces, Prometheus dump) at the end. Other scheduler flags are
// ignored in this mode.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"detournet/internal/faults"
	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/workload"
)

func main() {
	var (
		jobs        = flag.Int("jobs", 600, "jobs in the generated fleet trace")
		workers     = flag.Int("workers", 8, "worker-pool size")
		seed        = flag.Int64("seed", 2015, "world and trace seed")
		providerCap = flag.Int("provider-cap", 4, "max concurrent transfers per provider (-1 = unlimited)")
		dtnCap      = flag.Int("dtn-cap", 2, "max concurrent detour transfers per DTN (-1 = unlimited)")
		tenantRate  = flag.Float64("tenant-rate", 0, "admitted jobs/sec per tenant (0 = unlimited)")
		statsEvery  = flag.Duration("stats", 2*time.Second, "status-line interval (0 = quiet)")
		chaos       = flag.Bool("chaos", false, "replay the canned fault schedule while draining")
		overload    = flag.Bool("overload", false, "arm admission control, fair queuing, shedding, hedging, and brownout")
		churn       = flag.Bool("churn", false, "replay the BGP reconvergence storm, control vs full stack, and report")
		grayfail    = flag.Bool("grayfail", false, "replay the gray-failure schedule, no-health ablation vs health stack, and report")
		pressure    = flag.Bool("pressure", false, "replay the storage-exhaustion schedule, no-mitigation ablation vs full stack, and report")
		mpath       = flag.Bool("multipath", false, "run the striped-vs-single comparison plus the multipath churn leg, and report")
		crashsafe   = flag.Bool("crashsafe", false, "run the crash-consistency sweep (kill at every crash point, restart, replay) and report")
		telem       = flag.Bool("telemetry", false, "replay the instrumented flash crowd with the observability plane and report")
		dumpEvery   = flag.Float64("dump-every", 60, "virtual seconds between periodic telemetry lines in -telemetry mode")
	)
	flag.Parse()

	if *telem {
		o := sched.RunTelemetry(sched.TelemetryOptions{
			Seed: *seed, DumpEvery: *dumpEvery, DumpTo: os.Stdout,
		})
		fmt.Println()
		sched.WriteTelemetryReport(os.Stdout, o)
		return
	}

	if *crashsafe {
		control, legs := sched.RunCrashsafeSweep(*seed)
		sched.WriteCrashsafeReport(os.Stdout, control, legs)
		decay := sched.RunCrashsafe(sched.CrashsafeOptions{Seed: *seed, Decay: true})
		sched.WriteCrashsafeDecayReport(os.Stdout, decay)
		if err := sched.CrashsafeSanity(control, legs); err != nil {
			fmt.Fprintf(os.Stderr, "detourd: crashsafe: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *mpath {
		o := sched.RunMultipath(sched.MultipathOptions{Seed: *seed})
		mc := sched.RunMultipathChurn(*seed, 0)
		sched.WriteMultipathReport(os.Stdout, o, mc)
		if err := sched.MultipathSanity(o); err != nil {
			fmt.Fprintf(os.Stderr, "detourd: multipath: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *churn {
		control := sched.RunChurn(sched.ChurnOptions{Seed: *seed, Stack: false})
		stack := sched.RunChurn(sched.ChurnOptions{Seed: *seed, Stack: true})
		sched.WriteChurnReport(os.Stdout, control, stack)
		return
	}

	if *grayfail {
		control := sched.RunGrayfail(sched.GrayfailOptions{Seed: *seed, Stack: false})
		stack := sched.RunGrayfail(sched.GrayfailOptions{Seed: *seed, Stack: true})
		sched.WriteGrayfailReport(os.Stdout, control, stack)
		return
	}

	if *pressure {
		control := sched.RunPressure(sched.PressureOptions{Seed: *seed, Stack: false})
		stack := sched.RunPressure(sched.PressureOptions{Seed: *seed, Stack: true})
		sched.WritePressureReport(os.Stdout, control, stack)
		return
	}

	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    *jobs,
		Clients: scenario.Clients,
		Providers: []string{
			scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive,
		},
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "detourd: %v\n", err)
		os.Exit(2)
	}

	w := scenario.Build(*seed)
	exec := sched.NewSimExecutor(w)
	defer exec.Close()
	cfg := sched.Config{
		Workers: *workers, Executor: exec, Planner: exec,
		ProviderCap: *providerCap, DTNCap: *dtnCap,
		TenantRate: *tenantRate,
	}
	var inj *faults.Injector
	if *chaos {
		inj = faults.NewInjector(w, *seed, faults.CannedSchedule()...)
		// Backoff must spend virtual time so retries interact with the
		// fault windows; a few extra attempts ride out outage windows.
		cfg.Now, cfg.Sleep = exec.VirtualNow, exec.SleepVirtual
		cfg.MaxAttempts = 5
	}
	const deadlineSlack = 60.0 // virtual seconds from admission
	if *overload {
		cfg.Now, cfg.Sleep = exec.VirtualNow, exec.SleepVirtual
		cfg.QueueLimit = 16 * *workers
		cfg.TenantQueueLimit = 8 * *workers
		cfg.FairQueue = true
		cfg.CoDelTarget = 10
		cfg.Hedge = true
		cfg.BrownoutEnter = 0.8
	}
	s := sched.New(cfg)
	s.Start()
	defer s.Close()

	fmt.Printf("detourd: %d jobs, %d workers, provider-cap=%d dtn-cap=%d tenant-rate=%g\n",
		len(trace), *workers, *providerCap, *dtnCap, *tenantRate)

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Printf("detourd: %s\n", s.Stats())
				case <-stop:
					return
				}
			}
		}()
	}

	admitted := 0
	for _, fj := range trace {
		j := sched.Job{
			Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
			Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
		}
		// A rate-limited tenant's job waits for its bucket to refill
		// rather than being dropped: the daemon back-pressures the trace.
		for {
			var err error
			if *overload {
				// The bounded queue back-pressures through SubmitWait:
				// a full queue blocks the trace instead of dropping it.
				// Deadlines run from admission, so work that rots in the
				// queue expires instead of burning transfer capacity.
				j.Deadline = exec.VirtualNow() + deadlineSlack
				err = s.SubmitWait(j)
			} else {
				err = s.Submit(j)
			}
			if err == nil {
				admitted++
				break
			}
			if err != sched.ErrRateLimited {
				fmt.Fprintf(os.Stderr, "detourd: submit %s: %v\n", fj.Name, err)
				os.Exit(1)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	s.Drain()

	st := s.Stats()
	fmt.Printf("detourd: drained — %s\n", st)
	fmt.Printf("  admitted %d of %d; %d retries, %d detour->direct fallbacks, %d cache invalidations\n",
		admitted, len(trace), st.Retries, st.Fallbacks, st.CacheInvalidations)
	fmt.Printf("  virtual time: %.1f s of simulated transfer activity\n", exec.VirtualNow())
	if inj != nil {
		fmt.Printf("  chaos: %d fault transitions; %d failovers, %d breaker diversions, %d breaker transitions\n",
			inj.Injected, st.Failovers, st.BreakerSkips, st.BreakerTransitions)
		fmt.Printf("  recovery: %.1f MB resumed from checkpoints, %.1f MB rewritten\n",
			st.BytesResumed/1e6, st.BytesRewritten/1e6)
	}
	if *overload {
		fmt.Printf("  overload: %d shed, %d expired, %d late; queue delay p99 %.1fs\n",
			st.Shed, st.Expired, st.Late, st.QueueDelayP99)
		fmt.Printf("  hedging: %d launched, %d won; brownout %d enters / %d exits, %d direct serves, %d stale cache serves\n",
			st.Hedges, st.HedgeWins, st.BrownoutEnters, st.BrownoutExits, st.BrownoutDirect, st.StaleServes)
	}

	routes := make([]string, 0, len(st.PerRoute))
	for r := range st.PerRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Println("  per-route totals:")
	for _, r := range routes {
		rs := st.PerRoute[r]
		fmt.Printf("    %-16s %4d jobs  %8.1f MB  %6.2f MB/s\n",
			r, rs.Jobs, rs.Bytes/1e6, rs.Throughput()/1e6)
	}
	fmt.Println("  concurrency peaks (cap enforcement high-water marks):")
	provs := make([]string, 0, len(st.ProviderPeak))
	for p := range st.ProviderPeak {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Printf("    provider %-12s peak %d\n", p, st.ProviderPeak[p])
	}
	dtns := make([]string, 0, len(st.DTNPeak))
	for d := range st.DTNPeak {
		dtns = append(dtns, d)
	}
	sort.Strings(dtns)
	for _, d := range dtns {
		fmt.Printf("    dtn      %-12s peak %d\n", d, st.DTNPeak[d])
	}
	if st.Failed > 0 && !*chaos && !*overload {
		os.Exit(1)
	}
}
