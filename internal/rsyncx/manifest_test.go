package rsyncx

import (
	"testing"

	"detournet/internal/simproc"
)

func TestChunkSums(t *testing.T) {
	if ChunkSum("abc", 0) == ChunkSum("abc", 1) {
		t.Fatal("chunk sums must differ by index")
	}
	if ChunkSum("abc", 0) == rotSum("abc", 0) {
		t.Fatal("rot sum must differ from healthy sum")
	}
	if n := ChunkCount(0); n != 1 {
		t.Fatalf("ChunkCount(0) = %d", n)
	}
	if n := ChunkCount(ManifestChunk*2 + 1); n != 3 {
		t.Fatalf("ChunkCount = %d", n)
	}
	if s := ChunkSpan(ManifestChunk*2+5, 2); s != 5 {
		t.Fatalf("tail span = %v", s)
	}
	bad := VerifyManifest([]string{ChunkSum("m", 0), rotSum("m", 1), ChunkSum("m", 2)}, "m")
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("VerifyManifest = %v", bad)
	}
}

func TestManifestAndRepair(t *testing.T) {
	rg := newRig(t)
	size := float64(ManifestChunk*2 + 4096)
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		if _, err := cl.PushSizedResumable(p, "m.bin", size, 0, 0, "digest"); err != nil {
			t.Errorf("push: %v", err)
			return
		}
		sums, err := cl.Manifest(p, "m.bin")
		if err != nil {
			t.Errorf("manifest: %v", err)
			return
		}
		if len(sums) != 3 || len(VerifyManifest(sums, "digest")) != 0 {
			t.Errorf("fresh staged file reports bad chunks: %v", sums)
			return
		}
		// Rot one chunk: only that chunk shows as bad, and repairing it
		// restores a clean manifest.
		if !rg.d.RotChunk("m.bin", 1) {
			t.Error("RotChunk refused a staged chunk")
			return
		}
		sums, _ = cl.Manifest(p, "m.bin")
		if bad := VerifyManifest(sums, "digest"); len(bad) != 1 || bad[0] != 1 {
			t.Errorf("bad chunks = %v, want [1]", bad)
			return
		}
		if err := cl.RepairChunk(p, "m.bin", 1, ChunkSpan(size, 1)); err != nil {
			t.Errorf("repair: %v", err)
			return
		}
		sums, _ = cl.Manifest(p, "m.bin")
		if bad := VerifyManifest(sums, "digest"); len(bad) != 0 {
			t.Errorf("chunks still bad after repair: %v", bad)
		}
	})
}

func TestScrubClampsRottenPartial(t *testing.T) {
	rg := newRig(t)
	size := float64(ManifestChunk * 4)
	rg.run(t, func(p *simproc.Proc, cl *Client) {
		aborted := 0
		cl.Abort = func() bool { aborted++; return aborted > 2 } // land 2 chunks, then stop
		if _, err := cl.PushSizedResumable(p, "p.bin", size, 0, 0, "digest"); err != ErrAborted {
			t.Errorf("expected ErrAborted, got %v", err)
			return
		}
		if got := rg.d.PartialOffset("p.bin"); got != float64(ManifestChunk*2) {
			t.Errorf("partial = %v", got)
			return
		}
		// Rot the first landed chunk: the scrubbed offset falls back to
		// its start, so the resume rewrites it instead of trusting it.
		rg.d.RotChunk("p.bin", 0)
		if got := rg.d.PartialOffset("p.bin"); got != 0 {
			t.Errorf("scrubbed partial = %v, want 0", got)
			return
		}
		cl.Abort = nil
		sent, err := cl.PushSizedResumable(p, "p.bin", size, 0, 0, "digest")
		if err != nil || sent != size {
			t.Errorf("resume after scrub: sent=%v err=%v", sent, err)
			return
		}
		if _, ok := rg.d.Staged("p.bin"); !ok {
			t.Error("file not staged after repair push")
		}
	})
}

// TestAtomicPartialsSurviveCrash is the torn-write satellite: with the
// default two-phase write path a daemon crash mid-chunk leaves the
// partial exactly at its last committed offset, while the legacy
// in-place path (TornWrites) leaves a longer partial whose tail is
// garbage — which the manifest scrub then refuses to report as
// confirmed. Either way, Stat never overstates what is safe to resume
// from.
func TestAtomicPartialsSurviveCrash(t *testing.T) {
	for _, torn := range []bool{false, true} {
		rg := newRig(t)
		rg.d.TornWrites = torn
		rg.d.DiskBps = 1e6 // slow disk so the crash lands mid-write
		size := float64(ManifestChunk * 2)
		crashed := false
		rg.r.Go("crasher", func(p *simproc.Proc) {
			// Well inside the first chunk's multi-second disk write.
			p.Sleep(5)
			rg.d.Crash()
			crashed = true
		})
		rg.run(t, func(p *simproc.Proc, cl *Client) {
			_, err := cl.PushSizedResumable(p, "t.bin", size, 0, 0, "digest")
			if err == nil {
				t.Errorf("torn=%v: push survived a daemon crash", torn)
			}
		})
		if !crashed {
			t.Fatalf("torn=%v: crash never fired", torn)
		}
		raw := 0.0
		if pt, ok := rg.d.partials["t.bin"]; ok {
			raw = pt.received
		}
		if torn {
			if raw <= 0 {
				t.Fatalf("torn=true: expected a torn tail on disk, partial=%v", raw)
			}
		} else if raw != 0 {
			t.Fatalf("torn=false: atomic write path left %v uncommitted bytes", raw)
		}
		// The scrubbed offset — what a resuming client sees — must be a
		// chunk boundary covering only healthy bytes: zero here.
		if got := rg.d.PartialOffset("t.bin"); got != 0 {
			t.Fatalf("torn=%v: scrubbed offset %v, want 0", torn, got)
		}
	}
}
