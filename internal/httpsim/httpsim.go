// Package httpsim is a minimal HTTP/1.1 emulation over the simulated
// transport: requests and responses are structured messages whose wire
// time is driven by their serialized size, servers are mux-dispatched
// handlers running as simulation processes, and clients keep
// per-host:port connections alive the way the providers' real API
// libraries do.
//
// The point is not to re-implement net/http but to charge realistic wire
// and round-trip costs to the REST conversations the cloud-storage SDKs
// hold (session initiation, per-chunk PUTs, JSON status replies).
package httpsim

import (
	"fmt"
	"sort"
	"strings"

	"detournet/internal/simproc"
	"detournet/internal/transport"
)

// Standard-ish status codes used by the provider emulations.
const (
	StatusOK                  = 200
	StatusCreated             = 201
	StatusNoContent           = 204
	StatusPermanentRedirect   = 308
	StatusBadRequest          = 400
	StatusUnauthorized        = 401
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusConflict            = 409
	StatusPayloadTooLarge     = 413
	StatusTooManyRequests     = 429
	StatusInternalServerError = 500
	StatusServiceUnavailable  = 503
	// StatusInsufficientStorage (WebDAV, RFC 4918) is what the provider
	// emulations answer when the tenant's storage quota is spent — the
	// quota-exhaustion signal schedulers park or spill on.
	StatusInsufficientStorage = 507
)

// baseHeaderBytes approximates request/status line + mandatory headers.
const baseHeaderBytes = 180

// Request is an HTTP request. Body carries real bytes when the payload
// matters to the application (JSON, rsync deltas); BodySize alone sizes
// bulk payloads (file contents) without materializing them.
type Request struct {
	Method string
	Path   string
	Host   string
	Header map[string]string
	Body   []byte
	// BodySize is the body's wire size in bytes when Body is nil.
	BodySize float64
}

// Size returns the request's wire size in bytes.
func (r *Request) Size() float64 {
	n := float64(baseHeaderBytes + len(r.Method) + len(r.Path) + len(r.Host))
	for k, v := range r.Header {
		n += float64(len(k) + len(v) + 4)
	}
	return n + r.bodyBytes()
}

func (r *Request) bodyBytes() float64 {
	if r.Body != nil {
		return float64(len(r.Body))
	}
	return r.BodySize
}

// ContentLength returns the body size in bytes.
func (r *Request) ContentLength() float64 { return r.bodyBytes() }

// Response is an HTTP response; sizing mirrors Request.
type Response struct {
	Status   int
	Header   map[string]string
	Body     []byte
	BodySize float64
}

// Size returns the response's wire size in bytes.
func (r *Response) Size() float64 {
	n := float64(baseHeaderBytes)
	for k, v := range r.Header {
		n += float64(len(k) + len(v) + 4)
	}
	if r.Body != nil {
		return n + float64(len(r.Body))
	}
	return n + r.BodySize
}

// OK reports whether the status is 2xx.
func (r *Response) OK() bool { return r.Status >= 200 && r.Status < 300 }

// StatusError is the typed error for a non-2xx response, so callers can
// branch on the status class (429 vs 5xx vs 4xx) with errors.As instead
// of string matching.
type StatusError struct {
	Status int
	Body   string
	// RetryAfter is the parsed Retry-After header in seconds (0 when the
	// response carried none). Surfaced so callers above the SDK's own
	// throttle loop — the scheduler's backoff, notably — can honor the
	// provider's pacing hint instead of guessing.
	RetryAfter float64
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("httpsim: status %d: %s", e.Status, e.Body)
}

// Error converts a non-2xx response into a Go error (nil for 2xx). The
// returned error is a *StatusError.
func (r *Response) Error() error {
	if r.OK() {
		return nil
	}
	se := &StatusError{Status: r.Status, Body: strings.TrimSpace(string(r.Body))}
	if v, ok := r.Header["Retry-After"]; ok {
		fmt.Sscanf(v, "%f", &se.RetryAfter)
	}
	return se
}

// Ctx is passed to handlers.
type Ctx struct {
	// Proc is the handler's simulation process; handlers may Sleep on it
	// to model server-side work.
	Proc *simproc.Proc
	// RemoteHost is the client's topology host name.
	RemoteHost string
}

// HandlerFunc serves one request.
type HandlerFunc func(ctx *Ctx, req *Request) *Response

// route matches a method and a path prefix.
type route struct {
	method string
	prefix string
	fn     HandlerFunc
}

// Server dispatches requests to handlers. ProcessingDelay is charged per
// request before the handler runs, modelling the provider's backend
// latency.
type Server struct {
	net             *transport.Net
	routes          []route
	ProcessingDelay float64
	closed          bool
}

// NewServer returns an empty server over the transport.
func NewServer(net *transport.Net) *Server {
	if net == nil {
		panic("httpsim: nil transport")
	}
	return &Server{net: net, ProcessingDelay: 0.002}
}

// Handle registers fn for a method and path prefix. Longest prefix wins;
// method "*" matches any method.
func (s *Server) Handle(method, prefix string, fn HandlerFunc) {
	if fn == nil {
		panic("httpsim: nil handler")
	}
	s.routes = append(s.routes, route{method: method, prefix: prefix, fn: fn})
	sort.SliceStable(s.routes, func(i, j int) bool {
		return len(s.routes[i].prefix) > len(s.routes[j].prefix)
	})
}

func (s *Server) dispatch(ctx *Ctx, req *Request) *Response {
	for _, rt := range s.routes {
		if (rt.method == "*" || rt.method == req.Method) && strings.HasPrefix(req.Path, rt.prefix) {
			return rt.fn(ctx, req)
		}
	}
	return &Response{Status: StatusNotFound, Body: []byte("no route for " + req.Method + " " + req.Path)}
}

// Serve runs the accept loop on the listener until the listener closes.
// Each connection is handled by its own process; requests on one
// connection are served in order (HTTP/1.1 without pipelining).
func (s *Server) Serve(l *transport.Listener) {
	r := s.net.Runner()
	r.Go("http-accept:"+l.Addr(), func(p *simproc.Proc) {
		for {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			r.Go("http-conn:"+c.RemoteHost(), func(hp *simproc.Proc) {
				s.serveConn(hp, c)
			})
		}
	})
}

func (s *Server) serveConn(p *simproc.Proc, c *transport.Conn) {
	defer c.Close()
	for {
		msg, err := c.Recv(p)
		if err != nil {
			return
		}
		req, ok := msg.Payload.(*Request)
		if !ok {
			return // protocol error; drop the connection
		}
		if s.ProcessingDelay > 0 {
			p.Sleep(s.ProcessingDelay)
		}
		resp := s.dispatch(&Ctx{Proc: p, RemoteHost: c.RemoteHost()}, req)
		if resp == nil {
			resp = &Response{Status: StatusInternalServerError}
		}
		if err := c.Send(p, resp, resp.Size()); err != nil {
			return
		}
	}
}

// Client issues requests from a fixed source host, keeping one
// connection per (host, port, tls) alive across requests.
type Client struct {
	net  *transport.Net
	from string
	tls  bool
	port int

	conns   map[string]*transport.Conn
	dialing map[string]*simproc.Future[*transport.Conn]
}

// NewClient returns a client dialing from fromHost. tls and port apply
// to every request (the provider SDKs all speak HTTPS on 443).
func NewClient(net *transport.Net, fromHost string, port int, tls bool) *Client {
	if net == nil {
		panic("httpsim: nil transport")
	}
	return &Client{
		net: net, from: fromHost, tls: tls, port: port,
		conns:   make(map[string]*transport.Conn),
		dialing: make(map[string]*simproc.Future[*transport.Conn]),
	}
}

// From returns the client's source host.
func (c *Client) From() string { return c.from }

// conn returns the kept-alive connection to host, dialing if needed.
// Concurrent first users coalesce onto a single dial: the handshake
// parks the dialing process, and without coalescing a second caller
// would dial again and leak the first connection.
func (c *Client) conn(p *simproc.Proc, host string) (*transport.Conn, error) {
	for {
		if cc, ok := c.conns[host]; ok && !cc.Closed() {
			return cc, nil
		}
		f, inflight := c.dialing[host]
		if !inflight {
			break
		}
		if cc := simproc.Await(p, f); cc != nil && !cc.Closed() {
			return cc, nil
		}
		// The coalesced dial failed or the conn already died; try again.
	}
	f := simproc.NewFuture[*transport.Conn](c.net.Runner())
	c.dialing[host] = f
	cc, err := c.net.Dial(p, c.from, host, c.port, transport.DialOpts{TLS: c.tls})
	delete(c.dialing, host)
	if err != nil {
		f.Set(nil)
		return nil, err
	}
	c.conns[host] = cc
	f.Set(cc)
	return cc, nil
}

// Do sends the request to req.Host and blocks for the response, redialing
// once if a kept-alive connection turned out dead.
func (c *Client) Do(p *simproc.Proc, req *Request) (*Response, error) {
	if req.Host == "" {
		return nil, fmt.Errorf("httpsim: request without Host")
	}
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := c.conn(p, req.Host)
		if err != nil {
			return nil, err
		}
		msg, err := cc.Exchange(p, req, req.Size())
		if err != nil {
			cc.Close()
			delete(c.conns, req.Host)
			continue
		}
		resp, ok := msg.Payload.(*Response)
		if !ok {
			return nil, fmt.Errorf("httpsim: non-response payload %T", msg.Payload)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("httpsim: request to %s failed after retry", req.Host)
}

// CloseIdle closes all kept-alive connections.
func (c *Client) CloseIdle() {
	for k, cc := range c.conns {
		cc.Close()
		delete(c.conns, k)
	}
}
