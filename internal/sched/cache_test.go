package sched

import (
	"math/rand"
	"testing"

	"detournet/internal/core"
)

func fakeClock(t *float64) func() float64 {
	return func() float64 { return *t }
}

var cands = []core.Route{core.DirectRoute, core.ViaRoute("ualberta"), core.ViaRoute("umich-pl")}

func TestSizeBucket(t *testing.T) {
	cases := []struct {
		bytes float64
		want  int
	}{
		{50e3, 0}, {999e3, 0}, {1e6, 1}, {3.9e6, 1}, {4e6, 2},
		{15e6, 2}, {16e6, 3}, {60e6, 3}, {100e6, 4}, {1e12, 8},
	}
	for _, c := range cases {
		if got := SizeBucket(c.bytes); got != c.want {
			t.Errorf("SizeBucket(%g) = %d, want %d", c.bytes, got, c.want)
		}
	}
	a := KeyFor("ubc-pl", "GoogleDrive", 20e6)
	b := KeyFor("ubc-pl", "GoogleDrive", 50e6)
	if a != b {
		t.Errorf("20MB and 50MB should share a bucket: %+v vs %+v", a, b)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(10, 10, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ubc-pl", "GoogleDrive", 10e6)
	det := core.ViaRoute("ualberta")
	c.Insert(k, det, cands)

	if r, ok := c.Lookup(k); !ok || r != det {
		t.Fatalf("fresh lookup = %v %v, want hit on %v", r, ok, det)
	}
	clock = 9.99
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("entry expired before TTL")
	}
	clock = 10
	if _, ok := c.Lookup(k); ok {
		t.Fatal("entry survived past TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not swept: len=%d", c.Len())
	}
	h, m, _ := c.Counters()
	if h != 2 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", h, m)
	}
}

// TestCacheObserveRefreshesDecision: live traffic showing another route
// is faster re-elects the cached route without a probe.
func TestCacheObserveRefreshesDecision(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(1000, 1000, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ubc-pl", "GoogleDrive", 10e6)
	det := core.ViaRoute("ualberta")
	c.Insert(k, det, cands)

	// Detour delivers 1 MB/s; direct turns out to deliver 5 MB/s.
	c.Observe(k, det, 10e6, 10)
	c.Observe(k, core.DirectRoute, 10e6, 2)
	if r, ok := c.Lookup(k); !ok || r != core.DirectRoute {
		t.Fatalf("after observations lookup = %v, want Direct re-elected", r)
	}
	// And back, when the detour recovers decisively. (EWMA needs a few
	// observations to cross over.)
	for i := 0; i < 6; i++ {
		c.Observe(k, det, 10e6, 1)
	}
	if r, _ := c.Lookup(k); r != det {
		t.Fatalf("lookup = %v, want detour re-elected after recovery", r)
	}
}

func TestCacheInvalidateQuarantines(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(1000, 50, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("purdue-pl", "Dropbox", 30e6)
	det := core.ViaRoute("ualberta")
	c.Insert(k, det, cands)
	c.Observe(k, det, 30e6, 3) // detour looks great: 10 MB/s

	c.Invalidate(k, det)
	if r, ok := c.Lookup(k); !ok || r != core.DirectRoute {
		t.Fatalf("after invalidate lookup = %v %v, want direct hit", r, ok)
	}
	// While quarantined, even a glowing observation cannot re-elect it.
	c.Observe(k, core.DirectRoute, 30e6, 30)
	if r, _ := c.Lookup(k); r != core.DirectRoute {
		t.Fatalf("quarantined detour re-elected: %v", r)
	}
	// After the quarantine lapses, its (stale, good) estimate may win
	// again — the cooldown retry.
	clock = 51
	c.Observe(k, core.DirectRoute, 30e6, 30) // direct still 1 MB/s
	if r, _ := c.Lookup(k); r != det {
		t.Fatalf("post-quarantine lookup = %v, want detour back", r)
	}
}

func TestCacheInvalidateDirectDropsEntry(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(1000, 1000, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ucla-pl", "OneDrive", 5e6)
	c.Insert(k, core.DirectRoute, cands)
	c.Invalidate(k, core.DirectRoute)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("entry survived direct-route invalidation; next job should re-plan")
	}
}

func TestCacheHitRate(t *testing.T) {
	clock := 0.0
	c := NewRouteCache(100, 100, fakeClock(&clock), rand.New(rand.NewSource(1)))
	k := KeyFor("ubc-pl", "GoogleDrive", 10e6)
	if c.HitRate() != 0 {
		t.Error("hit rate before lookups should be 0")
	}
	c.Lookup(k) // miss
	c.Insert(k, core.DirectRoute, nil)
	for i := 0; i < 9; i++ {
		c.Lookup(k)
	}
	if hr := c.HitRate(); hr != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", hr)
	}
}
