package measure

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Export formats: the text tables mirror the paper; CSV and JSON carry
// the raw cells for external plotting (the figures in the paper are bar
// charts over exactly these rows).

// WriteCSV emits one row per (size, route) cell: client, provider,
// size_mb, route, mean_s, stddev_s, runs_kept, hop1_s, hop2_s, followed
// by the raw run durations.
func (g *Grid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"client", "provider", "size_mb", "route", "mean_s", "stddev_s", "runs_kept", "hop1_s", "hop2_s", "runs_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range g.Cells {
		runs := ""
		for i, r := range c.Runs {
			if i > 0 {
				runs += ";"
			}
			runs += fmt.Sprintf("%.3f", r)
		}
		rec := []string{
			g.Spec.Client,
			g.Spec.Provider,
			fmt.Sprintf("%d", c.SizeMB),
			c.Route.String(),
			fmt.Sprintf("%.3f", c.Summary.Mean),
			fmt.Sprintf("%.3f", c.Summary.StdDev),
			fmt.Sprintf("%d", c.Summary.N),
			fmt.Sprintf("%.3f", c.Hop1),
			fmt.Sprintf("%.3f", c.Hop2),
			runs,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// cellJSON is the stable JSON shape of one cell.
type cellJSON struct {
	Client   string    `json:"client"`
	Provider string    `json:"provider"`
	SizeMB   int       `json:"size_mb"`
	Route    string    `json:"route"`
	MeanS    float64   `json:"mean_s"`
	StdDevS  float64   `json:"stddev_s"`
	RunsKept int       `json:"runs_kept"`
	Hop1S    float64   `json:"hop1_s"`
	Hop2S    float64   `json:"hop2_s"`
	RunsS    []float64 `json:"runs_s"`
}

// WriteJSON emits the grid's cells as a JSON array.
func (g *Grid) WriteJSON(w io.Writer) error {
	out := make([]cellJSON, 0, len(g.Cells))
	for _, c := range g.Cells {
		out = append(out, cellJSON{
			Client:   g.Spec.Client,
			Provider: g.Spec.Provider,
			SizeMB:   c.SizeMB,
			Route:    c.Route.String(),
			MeanS:    c.Summary.Mean,
			StdDevS:  c.Summary.StdDev,
			RunsKept: c.Summary.N,
			Hop1S:    c.Hop1,
			Hop2S:    c.Hop2,
			RunsS:    append([]float64(nil), c.Runs...),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
