// Crash-consistent control plane: the ControlJournal is a write-ahead
// log of every scheduler decision that matters for recovery — job
// submissions, attempt starts, checkpoint watermarks (DTN partial +
// provider session token), cap-slot and retry-token spends, multipath
// lane assignments, and terminal finishes. Records ride the
// internal/journal CRC32C framing, so a replay after any crash
// recovers exactly the longest valid prefix: a torn tail is truncated,
// a bit-rotted record stops the scan, and everything before it is
// trusted.
//
// Replay folds records idempotently into (finished results, pending
// jobs with restored checkpoints, spent retry tokens). A finish record
// seen twice — the classic crash-between-commit-and-ack window — is
// counted once; an attempt whose finish record died with the process
// is resubmitted with its journaled checkpoint, reattaches the
// provider session via sdk.SessionResumer, and its commit replays
// idempotently under the same attempt ID (cloudsim's X-Attempt-Id
// table), so the provider materializes each object exactly once.
//
// The journal doubles as the crash *injector*: the enumerated crash
// points below are Reach()ed at their call sites in the scheduler, and
// an armed plan kills the control plane — appends become no-ops, the
// in-flight transfer is cooperatively aborted, Drain wakes — at the
// chosen occurrence of the chosen point.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"detournet/internal/core"
	"detournet/internal/journal"
	"detournet/internal/sdk"
)

// Enumerated control-plane crash points. RunCrashsafe sweeps all of
// them; the coverage test asserts every one is actually reached.
const (
	// CrashAfterSubmit dies after a submit record hits the journal but
	// before the job runs.
	CrashAfterSubmit = "after-submit"
	// CrashBeforeAttempt dies with the job claimed off the queue but
	// its attempt record unwritten.
	CrashBeforeAttempt = "before-attempt"
	// CrashAfterAttempt dies with the attempt record written but no
	// transfer started.
	CrashAfterAttempt = "after-attempt"
	// CrashTornAppend dies midway through writing a journal record —
	// the torn tail replay must truncate.
	CrashTornAppend = "torn-append"
	// CrashMidHop1 dies mid-transfer while bytes move on the first hop
	// (client→DTN staging, no provider session yet).
	CrashMidHop1 = "mid-hop1"
	// CrashMidHop2 dies mid-transfer while the provider session is live
	// (direct upload or detour relay).
	CrashMidHop2 = "mid-hop2"
	// CrashBeforeFinish dies after the provider committed the object
	// but before the finish record — recovery must not double-commit.
	CrashBeforeFinish = "before-finish"
	// CrashAfterFinish dies right after the finish record.
	CrashAfterFinish = "after-finish"
	// CrashDuringCompact dies at the start of a journal compaction,
	// before the snapshot swap — the uncompacted log must still replay.
	CrashDuringCompact = "during-compact"
)

// CrashPoints enumerates every control-plane crash point, in the order
// a job's life encounters them.
func CrashPoints() []string {
	return []string{
		CrashAfterSubmit, CrashBeforeAttempt, CrashAfterAttempt,
		CrashTornAppend, CrashMidHop1, CrashMidHop2,
		CrashBeforeFinish, CrashAfterFinish, CrashDuringCompact,
	}
}

// ErrCrashKilled marks results produced after the armed crash point
// fired: the control plane is "dead", the result exists only so the
// worker can unwind. Harnesses discard them.
var ErrCrashKilled = errors.New("sched: control plane killed at crash point")

// Journal record types.
const (
	recSubmit byte = iota + 1
	recAttempt
	recCkpt
	recCap
	recRetry
	recLanes
	recFinish
	recSnapshot
)

// submitRec journals one admitted job.
type submitRec struct {
	Seq int64
	Job Job
}

// attemptRec journals one attempt start.
type attemptRec struct {
	Seq       int64
	Name      string
	Attempt   int
	AttemptID string
	RouteKind int
	RouteVia  string
}

// ckptRec journals the in-flight checkpoint at a progress watermark:
// everything a restarted scheduler needs to resume mid-transfer — the
// DTN holding hop-1 bytes, the provider session token, and the
// accounting baselines.
type ckptRec struct {
	Seq        int64
	Name       string
	Hop1Via    string
	Hop1High   float64
	HasSession bool
	Session    sdk.SessionToken
	Hop2High   float64
	Resumed    float64
	Rewritten  float64
	Repairs    int
	Watermark  float64
}

// capRec journals a cap-slot acquire or release.
type capRec struct {
	Provider, Via string
	Acquire       bool
}

// retryRec journals one spent retry token.
type retryRec struct {
	Provider string
}

// lanesRec journals a multipath attempt's lane assignment: which
// routes carried how many stripe chunks.
type lanesRec struct {
	Seq    int64
	Name   string
	Paths  []string
	Chunks []int
}

// finishRec journals a terminal result.
type finishRec struct {
	Seq       int64
	Name      string
	OK        bool
	Err       string
	RouteKind int
	RouteVia  string
	Seconds   float64
	Attempts  int
	CacheHit  bool
	Resumed   float64
	Rewritten float64
	Repairs   int
	Hedged    bool
	HedgeWon  bool
	Reroutes  int
	Parked    float64
	Late      bool
	Degraded  bool
}

// snapshotRec is a compaction snapshot: the complete folded state, so
// replay of (snapshot + tail) equals replay of the full log.
type snapshotRec struct {
	NextSeq    int64
	Pending    []PendingJob
	Finished   []finishedJob
	RetrySpent map[string]int
	CapsHeld   map[string]int
}

// finishedJob pairs a finish record with its job for the snapshot (a
// compacted log no longer has the submit record to join against).
type finishedJob struct {
	Job    Job
	Finish finishRec
}

// PendingJob is one recovered in-flight job: submitted (and possibly
// mid-attempt) when the control plane died, with no finish record.
type PendingJob struct {
	Seq           int64
	Job           Job
	AttemptID     string
	PriorAttempts int
	// HasCkpt marks Ck as a journaled mid-transfer checkpoint to
	// restore; without one the job simply restarts.
	HasCkpt bool
	Ck      ckptRec
}

// Checkpoint reconstitutes the journaled checkpoint, ready to hand to
// a ResumableExecutor: the restored session token reattaches via
// sdk.SessionResumer, the restored Hop1Via reuses the DTN partial.
func (pj PendingJob) Checkpoint() core.Checkpoint {
	return core.Checkpoint{
		Hop1Via:        pj.Ck.Hop1Via,
		Hop1High:       pj.Ck.Hop1High,
		HasSession:     pj.Ck.HasSession,
		Session:        pj.Ck.Session,
		Hop2High:       pj.Ck.Hop2High,
		BytesResumed:   pj.Ck.Resumed,
		BytesRewritten: pj.Ck.Rewritten,
		AttemptID:      pj.AttemptID,
		ChunkRepairs:   pj.Ck.Repairs,
	}
}

// Recovered is what a journal replay yields.
type Recovered struct {
	// Finished holds the rebuilt terminal results, in journal order,
	// with duplicate finish records (same seq) counted once.
	Finished []Result
	// Pending holds submitted jobs with no finish record, by seq order.
	Pending []PendingJob
	// RetrySpent is the per-provider count of journaled retry-token
	// spends, for health.Tracker.RestoreSpentRetries.
	RetrySpent map[string]int
	// CapsHeld is the per-"provider|via" count of cap slots held at the
	// crash (informational: a restart's slots are all free).
	CapsHeld map[string]int
	// DupFinishes counts duplicate finish records skipped during the
	// fold — replayed attempts that must not double-count.
	DupFinishes int
	// Records and TruncatedBytes describe the replay itself.
	Records        int
	TruncatedBytes int
}

// foldState is the journal's folded meaning, maintained live (so
// compaction can snapshot it) and rebuilt on replay.
type foldState struct {
	nextSeq    int64
	seqByName  map[string]int64
	jobs       map[int64]Job
	pending    map[int64]*PendingJob
	finished   []finishedJob
	finishSeqs map[int64]bool
	retrySpent map[string]int
	capsHeld   map[string]int
	dupFinish  int
}

func newFoldState() *foldState {
	return &foldState{
		seqByName:  make(map[string]int64),
		jobs:       make(map[int64]Job),
		pending:    make(map[int64]*PendingJob),
		finishSeqs: make(map[int64]bool),
		retrySpent: make(map[string]int),
		capsHeld:   make(map[string]int),
	}
}

// apply folds one record. Folding is idempotent where replay can see a
// record twice (a finish re-journaled after a crash-before-ack).
func (st *foldState) apply(r journal.Rec) error {
	switch r.Type {
	case recSubmit:
		var m submitRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		if _, ok := st.seqByName[m.Job.Name]; ok {
			return nil // resubmission of a recovered job: already folded
		}
		st.seqByName[m.Job.Name] = m.Seq
		st.jobs[m.Seq] = m.Job
		st.pending[m.Seq] = &PendingJob{Seq: m.Seq, Job: m.Job}
		if m.Seq >= st.nextSeq {
			st.nextSeq = m.Seq + 1
		}
	case recAttempt:
		var m attemptRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		if pj := st.pending[m.Seq]; pj != nil {
			if m.Attempt > pj.PriorAttempts {
				pj.PriorAttempts = m.Attempt
			}
			pj.AttemptID = m.AttemptID
		}
	case recCkpt:
		var m ckptRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		if pj := st.pending[m.Seq]; pj != nil {
			pj.HasCkpt, pj.Ck = true, m
		}
	case recCap:
		var m capRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		k := m.Provider + "|" + m.Via
		if m.Acquire {
			st.capsHeld[k]++
		} else if st.capsHeld[k]--; st.capsHeld[k] <= 0 {
			delete(st.capsHeld, k)
		}
	case recRetry:
		var m retryRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		st.retrySpent[m.Provider]++
	case recLanes:
		// Lane state is observational (the stripe parts are provider
		// objects; a recovered multipath job re-stripes); nothing folds.
		var m lanesRec
		return json.Unmarshal(r.Data, &m)
	case recFinish:
		var m finishRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		if st.finishSeqs[m.Seq] {
			st.dupFinish++ // idempotent replay: count the attempt once
			return nil
		}
		st.finishSeqs[m.Seq] = true
		job := st.jobs[m.Seq]
		if pj := st.pending[m.Seq]; pj != nil {
			job = pj.Job
		}
		st.finished = append(st.finished, finishedJob{Job: job, Finish: m})
		delete(st.pending, m.Seq)
	case recSnapshot:
		var m snapshotRec
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return err
		}
		*st = *newFoldState()
		st.nextSeq = m.NextSeq
		for i := range m.Pending {
			pj := m.Pending[i]
			st.seqByName[pj.Job.Name] = pj.Seq
			st.jobs[pj.Seq] = pj.Job
			st.pending[pj.Seq] = &pj
		}
		for _, fj := range m.Finished {
			st.seqByName[fj.Job.Name] = fj.Finish.Seq
			st.jobs[fj.Finish.Seq] = fj.Job
			st.finishSeqs[fj.Finish.Seq] = true
			st.finished = append(st.finished, fj)
		}
		for k, v := range m.RetrySpent {
			st.retrySpent[k] = v
		}
		for k, v := range m.CapsHeld {
			st.capsHeld[k] = v
		}
	default:
		return fmt.Errorf("sched: unknown journal record type %d", r.Type)
	}
	return nil
}

// snapshot renders the folded state as a compaction record.
func (st *foldState) snapshot() snapshotRec {
	snap := snapshotRec{
		NextSeq:    st.nextSeq,
		RetrySpent: st.retrySpent,
		CapsHeld:   st.capsHeld,
		Finished:   append([]finishedJob(nil), st.finished...),
	}
	seqs := make([]int64, 0, len(st.pending))
	for seq := range st.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		snap.Pending = append(snap.Pending, *st.pending[seq])
	}
	return snap
}

// recovered renders the folded state for the restart path.
func (st *foldState) recovered() *Recovered {
	rec := &Recovered{
		RetrySpent:  st.retrySpent,
		CapsHeld:    st.capsHeld,
		DupFinishes: st.dupFinish,
	}
	for _, fj := range st.finished {
		rec.Finished = append(rec.Finished, fj.result())
	}
	seqs := make([]int64, 0, len(st.pending))
	for seq := range st.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		rec.Pending = append(rec.Pending, *st.pending[seq])
	}
	return rec
}

// result rebuilds the terminal Result a finish record encoded.
func (fj finishedJob) result() Result {
	m := fj.Finish
	res := Result{
		Job:     fj.Job,
		Route:   core.Route{Kind: core.RouteKind(m.RouteKind), Via: m.RouteVia},
		Seconds: m.Seconds, Attempts: m.Attempts, CacheHit: m.CacheHit,
		Resumed: m.Resumed, Rewritten: m.Rewritten, ChunkRepairs: m.Repairs,
		Hedged: m.Hedged, HedgeWon: m.HedgeWon,
		Reroutes: m.Reroutes, Parked: m.Parked,
		Late: m.Late, Degraded: m.Degraded,
	}
	if !m.OK {
		res.Err = fmt.Errorf("replayed: %s", m.Err)
	}
	return res
}

// ControlJournal is the scheduler's write-ahead log plus the crash
// injector acting on it. All methods are safe for concurrent use.
type ControlJournal struct {
	mu    sync.Mutex
	w     *journal.Writer
	state *foldState

	// Compaction: every compactEvery finishes, the folded state is
	// snapshotted and the device swapped to (snapshot) alone.
	compactEvery int
	sinceCompact int
	compactions  int
	truncated    int
	appended     int

	// Crash plan: point → remaining occurrences before the kill.
	plan    map[string]int
	hits    map[string]int
	tornArm bool
	killed  bool
	onKill  func()

	// recoveredMode marks a journal opened over prior records: this
	// incarnation is a restart, and the scheduler prechecks every
	// resubmitted job against the provider — even names whose records
	// were lost past a corrupted byte.
	recoveredMode bool

	// Degraded mode: when the device stays full even after an emergency
	// compaction, the journal stops persisting and keeps folding records
	// in memory only — the live process keeps its state and keeps
	// serving, at the cost of recovery fidelity after a crash. Sticky
	// for the incarnation; onDegraded fires exactly once on entry.
	degraded       bool
	droppedAppends int
	enospcSaves    int
	onDegraded     func()
}

// defaultCompactEvery is how many finish records trigger a compaction.
const defaultCompactEvery = 16

// NewControlJournal opens (or creates) a control journal on dev,
// replaying whatever the device already holds: a torn tail is
// truncated in place, and the folded state — finished results, pending
// jobs with restored checkpoints, spent retry tokens — is returned for
// the restart path. A fresh device yields an empty Recovered.
func NewControlJournal(dev journal.Device) (*ControlJournal, *Recovered, error) {
	recs, truncated, err := journal.Replay(dev)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: journal replay: %w", err)
	}
	st := newFoldState()
	applied := 0
	for _, r := range recs {
		if err := st.apply(r); err != nil {
			// A structurally valid record that doesn't decode is treated
			// like rot: trust the prefix, drop the rest.
			break
		}
		applied++
	}
	cj := &ControlJournal{
		w: journal.NewWriter(dev), state: st,
		compactEvery: defaultCompactEvery,
		plan:         make(map[string]int),
		hits:         make(map[string]int),
	}
	rec := st.recovered()
	rec.Records = applied
	rec.TruncatedBytes = truncated
	cj.truncated = truncated
	cj.recoveredMode = applied > 0 || truncated > 0
	return cj, rec, nil
}

// RecoveredMode reports whether this journal incarnation replayed
// prior records — i.e. the scheduler above it is a crash restart.
func (cj *ControlJournal) RecoveredMode() bool {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.recoveredMode
}

// SetCompactEvery overrides the compaction cadence (finishes per
// compaction; <= 0 disables compaction).
func (cj *ControlJournal) SetCompactEvery(n int) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.compactEvery = n
}

// OnKill registers the callback the crash plan fires exactly once when
// it kills the control plane (the scheduler uses it to wake Drain).
func (cj *ControlJournal) OnKill(fn func()) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.onKill = fn
}

// Arm schedules a kill at the occurrence-th (1-based) hit of the named
// crash point.
func (cj *ControlJournal) Arm(point string, occurrence int) {
	if occurrence < 1 {
		occurrence = 1
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if point == CrashTornAppend {
		cj.tornArm = true
	}
	cj.plan[point] = occurrence
}

// Disarm cancels a pending kill at the named point.
func (cj *ControlJournal) Disarm(point string) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	delete(cj.plan, point)
	if point == CrashTornAppend {
		cj.tornArm = false
	}
}

// TornJournal is the faults.CrashControl hook: arming is equivalent to
// arming the torn-append crash point — the next journal append tears
// mid-record and the control plane dies with it.
func (cj *ControlJournal) TornJournal(active bool) {
	if active {
		cj.Arm(CrashTornAppend, 1)
	} else {
		cj.Disarm(CrashTornAppend)
	}
}

// JournalENOSPC is the faults hook for journal disk exhaustion:
// arming clamps the device's capacity at its current size, so every
// further append hits ErrNoSpace until compaction shrinks the log (or
// the journal degrades); disarming restores the configured capacity.
// Devices without capacity support ignore the hook.
func (cj *ControlJournal) JournalENOSPC(active bool) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	type clamper interface {
		ClampCapacity()
		UnclampCapacity()
	}
	c, ok := cj.w.Device().(clamper)
	if !ok {
		return
	}
	if active {
		c.ClampCapacity()
	} else {
		c.UnclampCapacity()
	}
}

// FlipJournalByte silently corrupts one byte of the journal device
// (the faults.BitRot hook). Replay will recover the valid prefix.
func (cj *ControlJournal) FlipJournalByte(rng *rand.Rand) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	type flipper interface{ FlipByte(off int) }
	f, ok := cj.w.Device().(flipper)
	if !ok {
		return
	}
	n := cj.w.Device().Size()
	if n <= 0 {
		return
	}
	f.FlipByte(rng.Intn(n))
}

// Killed reports whether the crash plan has fired.
func (cj *ControlJournal) Killed() bool {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.killed
}

// HitCount returns how many times the named crash point was reached
// (armed or not) — the coverage test's evidence.
func (cj *ControlJournal) HitCount(point string) int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.hits[point]
}

// Reach marks one arrival at a crash point and fires the kill when the
// armed occurrence is reached. Returns whether the control plane is
// (now) dead — callers unwind without further journaling.
func (cj *ControlJournal) Reach(point string) bool {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.reachLocked(point)
}

func (cj *ControlJournal) reachLocked(point string) bool {
	cj.hits[point]++
	if cj.killed {
		return true
	}
	left, armed := cj.plan[point]
	if !armed {
		return false
	}
	left--
	if left > 0 {
		cj.plan[point] = left
		return false
	}
	delete(cj.plan, point)
	cj.killLocked()
	return true
}

// killLocked flips the dead switch and fires the wake callback once.
// Callers hold cj.mu; the callback runs without it (it takes scheduler
// locks).
func (cj *ControlJournal) killLocked() {
	cj.killed = true
	fn := cj.onKill
	if fn != nil {
		cj.mu.Unlock()
		fn()
		cj.mu.Lock()
	}
}

// append frames and writes one record, folding it into the live state.
// Dead journals drop everything (the process is gone); a torn-append
// arm tears this record mid-write and dies.
func (cj *ControlJournal) append(typ byte, v any) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.appendLocked(typ, v)
}

func (cj *ControlJournal) appendLocked(typ byte, v any) {
	if cj.killed {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sched: journal marshal: %v", err))
	}
	if cj.tornArm {
		if cj.reachLocked(CrashTornAppend) {
			// Die mid-write: the device keeps a torn prefix of this
			// record, which replay must truncate.
			type tearer interface{ TornNextAppend(frac float64) }
			if t, ok := cj.w.Device().(tearer); ok {
				t.TornNextAppend(0.5)
				cj.w.Append(typ, data) //nolint:errcheck // the torn write is the point
			}
			return
		}
	}
	if !cj.degraded {
		err := cj.w.Append(typ, data)
		if errors.Is(err, journal.ErrNoSpace) {
			// Compaction under pressure: the folded state is usually far
			// smaller than the raw log, so an emergency snapshot swap
			// frees space without losing anything, and the append retries
			// against the compacted log.
			if cerr := cj.compactLocked(); cerr == nil {
				if err = cj.w.Append(typ, data); err == nil {
					cj.enospcSaves++
				}
			}
		}
		switch {
		case err == nil:
			cj.appended++
		case errors.Is(err, journal.ErrNoSpace):
			// Even the compacted state no longer fits. Losing the control
			// plane over a full journal device would turn a disk problem
			// into an outage, so degrade instead of crash: keep folding in
			// memory, surface a health warning, accept that a crash from
			// here recovers only up to the last persisted record.
			cj.enterDegradedLocked()
		default:
			panic(fmt.Sprintf("sched: journal append: %v", err))
		}
	}
	if cj.degraded {
		cj.droppedAppends++
	}
	rec := journal.Rec{Type: typ, Data: data}
	if err := cj.state.apply(rec); err != nil {
		panic(fmt.Sprintf("sched: journal fold: %v", err))
	}
}

// enterDegradedLocked flips the journal into in-memory-only mode and
// fires the onDegraded warning callback once. Callers hold cj.mu; the
// callback runs without it (it may take health-tracker locks).
func (cj *ControlJournal) enterDegradedLocked() {
	if cj.degraded {
		return
	}
	cj.degraded = true
	fn := cj.onDegraded
	if fn != nil {
		cj.mu.Unlock()
		fn()
		cj.mu.Lock()
	}
}

// Degraded reports whether the journal has fallen back to in-memory
// folding because the device stayed full after compaction.
func (cj *ControlJournal) Degraded() bool {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.degraded
}

// DroppedAppends returns how many records were folded in memory only
// (degraded mode), invisible to any future replay.
func (cj *ControlJournal) DroppedAppends() int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.droppedAppends
}

// ENOSPCSaves returns how many appends succeeded only because an
// emergency compaction freed space first.
func (cj *ControlJournal) ENOSPCSaves() int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.enospcSaves
}

// OnDegraded registers the callback fired exactly once when the
// journal enters degraded mode (the scheduler surfaces it as a health
// warning).
func (cj *ControlJournal) OnDegraded(fn func()) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.onDegraded = fn
}

// NoteSubmit journals one admitted job, assigning (or, for a recovered
// resubmission, reusing) its sequence number, then reaches
// after-submit.
func (cj *ControlJournal) NoteSubmit(j Job) {
	cj.mu.Lock()
	if cj.killed {
		cj.mu.Unlock()
		return
	}
	if _, known := cj.state.seqByName[j.Name]; !known {
		seq := cj.state.nextSeq
		cj.appendLocked(recSubmit, submitRec{Seq: seq, Job: j})
	}
	cj.reachLocked(CrashAfterSubmit)
	cj.mu.Unlock()
}

// SeqFor returns the journaled sequence number for a job name (-1 when
// the journal has never seen it).
func (cj *ControlJournal) SeqFor(name string) int64 {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	seq, ok := cj.state.seqByName[name]
	if !ok {
		return -1
	}
	return seq
}

// AttemptID returns the job's stable idempotency key: every attempt of
// (and every recovery of) one submitted job commits under the same
// key, so the provider materializes its object exactly once.
func (cj *ControlJournal) AttemptID(name string) string {
	seq := cj.SeqFor(name)
	if seq < 0 {
		return ""
	}
	return fmt.Sprintf("%s#%d", name, seq)
}

// TakeRecovered hands out (once) the recovered in-flight state for a
// resubmitted job: its prior attempt count and journaled checkpoint.
func (cj *ControlJournal) TakeRecovered(name string) *PendingJob {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	seq, ok := cj.state.seqByName[name]
	if !ok {
		return nil
	}
	pj := cj.state.pending[seq]
	if pj == nil || (pj.PriorAttempts == 0 && !pj.HasCkpt) {
		return nil
	}
	out := *pj
	pj.PriorAttempts, pj.HasCkpt = 0, false // hand out once
	return &out
}

// NoteAttempt journals one attempt start, bracketed by the
// before-attempt and after-attempt crash points. Returns whether the
// control plane died inside the bracket.
func (cj *ControlJournal) NoteAttempt(j Job, attempt int, route core.Route) bool {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.reachLocked(CrashBeforeAttempt) {
		return true
	}
	seq, ok := cj.state.seqByName[j.Name]
	if !ok {
		return cj.killed
	}
	cj.appendLocked(recAttempt, attemptRec{
		Seq: seq, Name: j.Name, Attempt: attempt,
		AttemptID: fmt.Sprintf("%s#%d", j.Name, seq),
		RouteKind: int(route.Kind), RouteVia: route.Via,
	})
	return cj.reachLocked(CrashAfterAttempt)
}

// NoteCkpt journals the live checkpoint at a progress watermark and
// evaluates the mid-transfer crash points: mid-hop1 while bytes move
// toward a DTN with no provider session, mid-hop2 once a session is
// live (direct chunks or the detour relay). A kill here raises the
// checkpoint's cooperative abort so the dead process's transfer
// unwinds instead of running to completion.
func (cj *ControlJournal) NoteCkpt(j Job, ck *core.Checkpoint, watermark float64) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.killed {
		// The process is dead; a transfer still making progress belongs
		// to it and must stop at its next safe point, not run to
		// completion on a ghost's behalf.
		ck.RequestAbort()
		return
	}
	seq, ok := cj.state.seqByName[j.Name]
	if !ok {
		return
	}
	cj.appendLocked(recCkpt, ckptRec{
		Seq: seq, Name: j.Name,
		Hop1Via: ck.Hop1Via, Hop1High: ck.Hop1High,
		HasSession: ck.HasSession, Session: ck.Session, Hop2High: ck.Hop2High,
		Resumed: ck.BytesResumed, Rewritten: ck.BytesRewritten,
		Repairs: ck.ChunkRepairs, Watermark: watermark,
	})
	point := CrashMidHop1
	if ck.HasSession || watermark >= j.Size {
		point = CrashMidHop2
	}
	if cj.reachLocked(point) {
		ck.RequestAbort()
	}
}

// NoteCap journals a cap-slot acquire or release.
func (cj *ControlJournal) NoteCap(provider, via string, acquire bool) {
	cj.append(recCap, capRec{Provider: provider, Via: via, Acquire: acquire})
}

// NoteRetry journals one spent retry token.
func (cj *ControlJournal) NoteRetry(provider string) {
	cj.append(recRetry, retryRec{Provider: provider})
}

// NoteLanes journals a multipath attempt's lane chunk assignment.
func (cj *ControlJournal) NoteLanes(name string, paths []string, chunks []int) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	seq, ok := cj.state.seqByName[name]
	if !ok {
		return
	}
	cj.appendLocked(recLanes, lanesRec{Seq: seq, Name: name, Paths: paths, Chunks: chunks})
}

// NoteFinish journals a terminal result, bracketed (for successes) by
// the before-finish and after-finish crash points, and triggers
// compaction on cadence. The before-finish window is the classic one:
// the provider has committed, the journal has not — recovery resolves
// it through the idempotent attempt key and the provider pre-check.
func (cj *ControlJournal) NoteFinish(res *Result) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.killed {
		return
	}
	seq, ok := cj.state.seqByName[res.Job.Name]
	if !ok {
		return
	}
	if res.Err == nil && cj.reachLocked(CrashBeforeFinish) {
		return
	}
	m := finishRec{
		Seq: seq, Name: res.Job.Name, OK: res.Err == nil,
		RouteKind: int(res.Route.Kind), RouteVia: res.Route.Via,
		Seconds: res.Seconds, Attempts: res.Attempts, CacheHit: res.CacheHit,
		Resumed: res.Resumed, Rewritten: res.Rewritten, Repairs: res.ChunkRepairs,
		Hedged: res.Hedged, HedgeWon: res.HedgeWon,
		Reroutes: res.Reroutes, Parked: res.Parked,
		Late: res.Late, Degraded: res.Degraded,
	}
	if res.Err != nil {
		m.Err = res.Err.Error()
	}
	cj.appendLocked(recFinish, m)
	if cj.killed { // torn-append fired on this very record
		return
	}
	if res.Err == nil && cj.reachLocked(CrashAfterFinish) {
		return
	}
	cj.sinceCompact++
	if cj.compactEvery > 0 && cj.sinceCompact >= cj.compactEvery {
		if cj.reachLocked(CrashDuringCompact) {
			return // died before the snapshot swap: the full log survives
		}
		if err := cj.compactLocked(); err != nil {
			cj.enterDegradedLocked()
		}
	}
}

// compactLocked snapshots the folded state and atomically swaps the
// device to (snapshot) alone. Callers hold cj.mu. A device refusing
// the swap for space is reported (the pressure path degrades on it);
// any other failure is a simulator bug and panics.
func (cj *ControlJournal) compactLocked() error {
	data, err := json.Marshal(cj.state.snapshot())
	if err != nil {
		panic(fmt.Sprintf("sched: snapshot marshal: %v", err))
	}
	if err := cj.w.Compact([]journal.Rec{{Type: recSnapshot, Data: data}}); err != nil {
		if errors.Is(err, journal.ErrNoSpace) {
			return err
		}
		panic(fmt.Sprintf("sched: journal compact: %v", err))
	}
	cj.sinceCompact = 0
	cj.compactions++
	return nil
}

// Compactions returns how many snapshot swaps have run.
func (cj *ControlJournal) Compactions() int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.compactions
}

// Appended returns how many records this incarnation wrote.
func (cj *ControlJournal) Appended() int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.appended
}

// Device exposes the underlying journal device (state dumps, tests).
func (cj *ControlJournal) Device() journal.Device {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.w.Device()
}

// DeviceSize reports the journal device's current size in bytes under
// the journal lock, so samplers can poll it without racing appends and
// compaction swaps.
func (cj *ControlJournal) DeviceSize() int {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.w.Device().Size()
}
