package journal

import (
	"bytes"
	"testing"
)

// FuzzScan feeds truncated, garbage, and bit-flipped journals to the
// decoder. The invariants: Scan never panics, the valid prefix it
// reports is in range, re-scanning that prefix is stable (same records,
// fully valid), and re-encoding the recovered records reproduces the
// prefix byte-for-byte.
func FuzzScan(f *testing.F) {
	var seed []byte
	seed = append(seed, Encode(1, []byte("job submit"))...)
	seed = append(seed, Encode(2, []byte(`{"seq":7,"name":"crash-003.bin"}`))...)
	seed = append(seed, Encode(9, nil)...)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])     // torn tail
	f.Add([]byte{})               // empty
	f.Add([]byte{Magic, 1, 0, 0}) // truncated header
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid := Scan(b)
		if valid < 0 || valid > len(b) {
			t.Fatalf("valid=%d out of [0,%d]", valid, len(b))
		}
		// Recovered prefix must itself be a fully valid journal.
		recs2, valid2 := Scan(b[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix unstable: %d/%d vs %d/%d",
				valid2, len(recs2), valid, len(recs))
		}
		// Re-encoding the records must reproduce the prefix exactly.
		var re []byte
		for _, r := range recs {
			re = append(re, Encode(r.Type, r.Data)...)
		}
		if !bytes.Equal(re, b[:valid]) {
			t.Fatal("re-encoded records differ from recovered prefix")
		}
	})
}
