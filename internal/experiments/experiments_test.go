package experiments

import (
	"strings"
	"testing"

	"detournet/internal/core"
	"detournet/internal/scenario"
)

// quickSuite shares one reduced-protocol suite across tests; grids are
// computed lazily per pair.
var quickSuite = &Suite{Options: Quick()}

func TestFig2ShapeUBCGoogleDrive(t *testing.T) {
	g := quickSuite.Pair(scenario.UBC, scenario.GoogleDrive).Grid
	for _, mb := range g.Spec.SizesMB {
		direct := g.Cell(mb, core.DirectRoute).Summary.Mean
		ualb := g.Cell(mb, core.ViaRoute(scenario.UAlberta)).Summary.Mean
		umich := g.Cell(mb, core.ViaRoute(scenario.UMich)).Summary.Mean
		if !(ualb < direct && direct < umich) {
			t.Errorf("%d MB: want viaUAlberta < direct < viaUMich, got %.1f %.1f %.1f",
				mb, ualb, direct, umich)
		}
	}
	// Table II headline: UAlberta detour saves > 30% at every size, >50%
	// at 100 MB.
	if gain := quickSuite.RelativeGain(scenario.UBC, scenario.GoogleDrive, core.ViaRoute(scenario.UAlberta), 100); gain > -45 {
		t.Errorf("100MB UAlberta gain = %.1f%%, want <= -45%%", gain)
	}
	out := quickSuite.Fig2()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "±") {
		t.Fatalf("Fig2 format:\n%s", out)
	}
}

func TestFig4ShapeUBCDropbox(t *testing.T) {
	g := quickSuite.Pair(scenario.UBC, scenario.Dropbox).Grid
	fast, slow := g.OverallFastest()
	if fast != core.DirectRoute {
		t.Errorf("UBC->Dropbox overall fastest = %v, want Direct", fast)
	}
	if slow != core.ViaRoute(scenario.UMich) {
		t.Errorf("UBC->Dropbox overall slowest = %v, want via UMich", slow)
	}
}

func TestFig7ShapePurdueGoogleDrive(t *testing.T) {
	g := quickSuite.Pair(scenario.Purdue, scenario.GoogleDrive).Grid
	for _, mb := range g.Spec.SizesMB {
		direct := g.Cell(mb, core.DirectRoute).Summary.Mean
		for _, via := range []string{scenario.UAlberta, scenario.UMich} {
			det := g.Cell(mb, core.ViaRoute(via)).Summary.Mean
			if det >= direct {
				t.Errorf("%d MB via %s (%.1f) should beat direct (%.1f)", mb, via, det, direct)
			}
		}
	}
	// Table III headline: both detours save >= 50% at 100 MB.
	for _, via := range []string{scenario.UAlberta, scenario.UMich} {
		if gain := quickSuite.RelativeGain(scenario.Purdue, scenario.GoogleDrive, core.ViaRoute(via), 100); gain > -50 {
			t.Errorf("100MB via %s gain = %.1f%%, want <= -50%%", via, gain)
		}
	}
}

func TestFig9ShapePurdueOneDrive(t *testing.T) {
	// Under the full 7-run protocol the route preference is
	// size-dependent (the paper's Sec III-B point: "tricky to decide"):
	// some sizes favour a detour, at least one favours direct, and the
	// 100 MB detour win is substantial.
	full := &Suite{Options: Default()}
	fg := full.Pair(scenario.Purdue, scenario.OneDrive).Grid
	var directWins, detourWins int
	for _, mb := range fg.Spec.SizesMB {
		if fg.Fastest(mb).Kind == core.Direct {
			directWins++
		} else {
			detourWins++
		}
	}
	t.Logf("Purdue->OneDrive fastest-route split: direct %d sizes, detour %d sizes", directWins, detourWins)
	if directWins == 0 || detourWins == 0 {
		t.Errorf("route preference should be size-dependent: direct=%d detour=%d", directWins, detourWins)
	}
	if gain := full.RelativeGain(scenario.Purdue, scenario.OneDrive, core.ViaRoute(scenario.UAlberta), 100); gain > -15 {
		t.Errorf("100MB detour gain = %.1f%%, want <= -15%%", gain)
	}
}

func TestFig10and11ShapeUCLA(t *testing.T) {
	for _, prov := range []string{scenario.GoogleDrive, scenario.Dropbox} {
		g := quickSuite.Pair(scenario.UCLA, prov).Grid
		fast, _ := g.OverallFastest()
		if fast != core.DirectRoute {
			t.Errorf("UCLA->%s overall fastest = %v, want Direct (last-mile bound)", prov, fast)
		}
		// Everything is slow: even 10 MB direct takes > 20 s.
		if m := g.Cell(10, core.DirectRoute).Summary.Mean; m < 20 {
			t.Errorf("UCLA->%s 10MB direct = %.1f s, want last-mile bound (>20s)", prov, m)
		}
		// Routes are within a small factor of each other (no big win).
		for _, mb := range g.Spec.SizesMB {
			d := g.Cell(mb, core.DirectRoute).Summary.Mean
			for _, r := range g.Spec.Routes[1:] {
				if v := g.Cell(mb, r).Summary.Mean; v < d*0.9 {
					t.Errorf("UCLA->%s %dMB: %v (%.1f) materially beats direct (%.1f)", prov, mb, r, v, d)
				}
			}
		}
	}
}

func TestTableIRendersAllCells(t *testing.T) {
	out := quickSuite.TableI()
	for _, c := range []string{"UBC", "Purdue", "UCLA"} {
		if !strings.Contains(out, c) {
			t.Fatalf("Table I missing client %s:\n%s", c, out)
		}
	}
	for _, p := range scenario.ProviderNames {
		if !strings.Contains(out, p) {
			t.Fatalf("Table I missing provider %s:\n%s", p, out)
		}
	}
	if !strings.Contains(out, "Fastest:") || !strings.Contains(out, "Slowest:") {
		t.Fatalf("Table I labels missing:\n%s", out)
	}
}

func TestTableIIandIIIRender(t *testing.T) {
	out := quickSuite.TableII()
	if !strings.Contains(out, "UBC-to-Google Drive") || !strings.Contains(out, "%]") {
		t.Fatalf("Table II:\n%s", out)
	}
	out = quickSuite.TableIII()
	if !strings.Contains(out, "Purdue-to-Google Drive") {
		t.Fatalf("Table III:\n%s", out)
	}
	// Table III detour entries are all negative (faster).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "[+") {
			t.Fatalf("Table III has a slower detour entry: %s", line)
		}
	}
}

func TestTableIVRendersWithOverlap(t *testing.T) {
	out := quickSuite.TableIV()
	if !strings.Contains(out, "Dropbox (Direct)") || !strings.Contains(out, "OneDrive (via ualberta)") {
		t.Fatalf("Table IV rows:\n%s", out)
	}
	if !strings.Contains(out, "overlap=") {
		t.Fatalf("Table IV overlap analysis missing:\n%s", out)
	}
}

func TestFig5and6Traceroutes(t *testing.T) {
	out := quickSuite.Fig5()
	if !strings.Contains(out, "pacificwave") || !strings.Contains(out, "vncv1rtr2.canarie.ca") {
		t.Fatalf("Fig 5:\n%s", out)
	}
	out = quickSuite.Fig6()
	if strings.Contains(out, "pacificwave") {
		t.Fatalf("Fig 6 must not cross pacificwave:\n%s", out)
	}
	if !strings.Contains(out, "* * *") || !strings.Contains(out, "edmn1rtr2.canarie.ca") {
		t.Fatalf("Fig 6:\n%s", out)
	}
}

func TestFig3AndTableV(t *testing.T) {
	out := quickSuite.Fig3()
	for _, name := range []string{"UBC", "UAlberta", "GoogleDrive", "Dropbox", "OneDrive"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Fig 3 missing %s:\n%s", name, out)
		}
	}
	out = quickSuite.TableV()
	if !strings.Contains(out, "km") || !strings.Contains(out, "fastest=") {
		t.Fatalf("Table V:\n%s", out)
	}
	// The UBC->GoogleDrive row must show the geographic backtracking:
	// fastest is the UAlberta detour whose path length exceeds direct.
	if !strings.Contains(out, "via ualberta") {
		t.Fatalf("Table V should show the UAlberta detour winning for UBC->GoogleDrive:\n%s", out)
	}
}

func TestPairSeedStable(t *testing.T) {
	o := Default()
	a := pairSeed(o, scenario.UBC, scenario.GoogleDrive)
	b := pairSeed(o, scenario.UBC, scenario.GoogleDrive)
	c := pairSeed(o, scenario.UBC, scenario.Dropbox)
	if a != b || a == c {
		t.Fatalf("pairSeed: %d %d %d", a, b, c)
	}
}

func TestMeanAccessor(t *testing.T) {
	if m := quickSuite.Mean(scenario.UBC, scenario.GoogleDrive, core.DirectRoute, 10); m <= 0 {
		t.Fatalf("Mean = %v", m)
	}
	if m := quickSuite.Mean(scenario.UBC, scenario.GoogleDrive, core.DirectRoute, 999); m != 0 {
		t.Fatalf("bogus size Mean = %v", m)
	}
}
