package bgppol_test

import (
	"fmt"
	"strings"

	"detournet/internal/bgppol"
)

// Valley-free routing in a customer/provider/peer graph: the stub
// domains can only reach each other over the peering between their
// providers — never through another stub.
func ExamplePolicy_DomainPath() {
	p := bgppol.NewPolicy()
	p.MustAddCustomerProvider("campusA", "backboneA")
	p.MustAddCustomerProvider("campusB", "backboneB")
	p.MustAddPeer("backboneA", "backboneB")

	path, _ := p.DomainPath("campusA", "campusB")
	fmt.Println(strings.Join(path, " -> "))
	fmt.Println("valley-free:", p.ValleyFree(path))
	// Output:
	// campusA -> backboneA -> backboneB -> campusB
	// valley-free: true
}
