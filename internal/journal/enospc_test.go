package journal

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// TestMemDeviceENOSPCWholeFrame: a bounded MemDevice rejects an append
// that does not fit as a whole — never a torn frame — and the log
// replays cleanly afterwards with only the accepted records.
func TestMemDeviceENOSPCWholeFrame(t *testing.T) {
	m := NewMemDevice()
	w := NewWriter(m)
	rec := []byte("0123456789")
	frame := len(Encode(1, rec))
	m.Capacity = 2*frame + frame/2 // room for two frames, not three
	for i := 0; i < 2; i++ {
		if err := w.Append(1, rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	before := m.Size()
	err := w.Append(1, rec)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overfull append err = %v, want ErrNoSpace", err)
	}
	if m.Size() != before {
		t.Fatalf("rejected append changed the log: %d -> %d bytes", before, m.Size())
	}
	recs, truncated, err := Replay(m)
	if err != nil || truncated != 0 {
		t.Fatalf("replay: %d truncated, err %v", truncated, err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[1].Data, rec) {
		t.Fatalf("replay found %d records, want the 2 accepted ones", len(recs))
	}
}

// TestMemDeviceSwapFitsSemantics: Swap (compaction) is judged against
// the capacity by its own size, not the current log's — a full log can
// always shrink, and a snapshot over capacity is refused atomically.
func TestMemDeviceSwapFitsSemantics(t *testing.T) {
	m := NewMemDevice()
	w := NewWriter(m)
	rec := []byte("0123456789")
	m.Capacity = 3 * len(Encode(1, rec))
	for i := 0; i < 3; i++ {
		if err := w.Append(1, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact([]Rec{{Type: 2, Data: []byte("snap")}}); err != nil {
		t.Fatalf("shrinking swap on a full log: %v", err)
	}
	if err := w.Append(1, rec); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	big := make([]byte, m.Capacity+1)
	before := m.Size()
	if err := m.Swap(big); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversize swap err = %v, want ErrNoSpace", err)
	}
	if m.Size() != before {
		t.Fatal("refused swap mutated the log")
	}
}

// TestMemDeviceClampUnclamp: ClampCapacity pins the bound at the
// current size (refusing all appends), is idempotent, and
// UnclampCapacity restores the configured bound — including the
// unbounded case.
func TestMemDeviceClampUnclamp(t *testing.T) {
	m := NewMemDevice() // unbounded
	w := NewWriter(m)
	rec := []byte("0123456789")
	if err := w.Append(1, rec); err != nil {
		t.Fatal(err)
	}
	m.ClampCapacity()
	m.ClampCapacity() // idempotent: must not overwrite the saved bound
	if err := w.Append(1, rec); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("clamped append err = %v, want ErrNoSpace", err)
	}
	// Compaction still works under the clamp: a smaller snapshot fits.
	if err := w.Compact([]Rec{{Type: 2, Data: []byte("s")}}); err != nil {
		t.Fatalf("compaction under clamp: %v", err)
	}
	m.UnclampCapacity()
	if m.Capacity != 0 {
		t.Fatalf("unclamp restored capacity %d, want the unbounded 0", m.Capacity)
	}
	if err := w.Append(1, rec); err != nil {
		t.Fatalf("append after unclamp: %v", err)
	}
}

// TestMemDeviceClampEmptyLog: clamping an empty log still refuses
// appends (capacity floors at one byte rather than going unbounded).
func TestMemDeviceClampEmptyLog(t *testing.T) {
	m := NewMemDevice()
	m.ClampCapacity()
	if err := NewWriter(m).Append(1, []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append to clamped empty log err = %v, want ErrNoSpace", err)
	}
}

// TestFileDeviceENOSPC: the file-backed device honors the same bound —
// whole-frame rejection on append, swap judged by the new content.
func TestFileDeviceENOSPC(t *testing.T) {
	f, err := OpenFileDevice(filepath.Join(t.TempDir(), "ctl.journal"))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	rec := []byte("012345678901234567890123456789")
	frame := len(Encode(1, rec))
	f.Capacity = frame + frame/2 // one frame plus a snapshot's worth
	if err := w.Append(1, rec); err != nil {
		t.Fatal(err)
	}
	before := f.Size()
	if err := w.Append(1, rec); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overfull append err = %v, want ErrNoSpace", err)
	}
	if f.Size() != before {
		t.Fatal("rejected append changed the file log")
	}
	if err := w.Compact([]Rec{{Type: 2, Data: []byte("s")}}); err != nil {
		t.Fatalf("shrinking swap: %v", err)
	}
	if err := w.Append(1, rec); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	// Reopen: the surviving log is exactly the snapshot plus the tail.
	g, err := OpenFileDevice(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	recs, truncated, err := Replay(g)
	if err != nil || truncated != 0 || len(recs) != 2 {
		t.Fatalf("reopened replay: %d recs, %d truncated, err %v", len(recs), truncated, err)
	}
}
