package cloudsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"detournet/internal/httpsim"
	"detournet/internal/oauthsim"
	"detournet/internal/simclock"
	"detournet/internal/transport"
)

// Style selects which provider protocol a Service speaks.
type Style int

const (
	// GoogleDrive: resumable-session init, then one (or few) large PUTs.
	GoogleDrive Style = iota
	// Dropbox: upload_session start/append_v2/finish with small chunks.
	Dropbox
	// OneDrive: createUploadSession, then Content-Range fragment PUTs.
	OneDrive
)

func (s Style) String() string {
	switch s {
	case GoogleDrive:
		return "GoogleDrive"
	case Dropbox:
		return "Dropbox"
	case OneDrive:
		return "OneDrive"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// DefaultChunkBytes returns the upload chunk/fragment size the 2015-era
// client libraries used for this provider.
func (s Style) DefaultChunkBytes() float64 {
	switch s {
	case GoogleDrive:
		return 8 << 20
	case Dropbox:
		return 4 << 20
	case OneDrive:
		return 10 << 20
	default:
		return 8 << 20
	}
}

// APIPort is the HTTPS port every provider listens on.
const APIPort = 443

// Service is one provider instance: API frontend host, auth server,
// object store, and protocol handlers.
type Service struct {
	Name  string
	Host  string
	Style Style
	Auth  *oauthsim.AuthServer
	Store *ObjectStore
	HTTP  *httpsim.Server

	eng      *simclock.Engine
	sessions map[string]*uploadSession
	nextSess int

	// Requests counts API requests served (excluding the token endpoint),
	// exposed for tests and ablations.
	Requests int
	// Throttled counts requests rejected with 429.
	Throttled int

	// RateLimit, when positive, caps API requests per RateWindow seconds
	// (token-bucket style); excess requests get 429 with a Retry-After
	// header, as the real providers throttle heavy uploaders.
	RateLimit  int
	RateWindow float64

	// Fault-injection knobs, driven by internal/faults.
	//
	// Down, when true, makes every protected endpoint answer 503 — a
	// provider-PoP outage. ErrorRate and ThrottleRate inject seeded
	// transient 500s/429s on protected requests with the given
	// probability (both require FaultRand; the sim serializes requests,
	// so a seeded source keeps runs deterministic). FailNext fails the
	// next N protected requests with FailStatus (500 when zero) — the
	// surgical interruption hook for resume tests.
	Down         bool
	ErrorRate    float64
	ThrottleRate float64
	FaultRand    *rand.Rand
	FailNext     int
	FailStatus   int

	// SessionTTL, when positive, expires upload sessions idle for longer
	// than that many virtual seconds; touching an expired session
	// returns 404, as the real providers garbage-collect stale resumable
	// uploads.
	SessionTTL float64

	// QuotaRetryAfter is the Retry-After pacing hint (virtual seconds)
	// stamped on 507 insufficient-storage responses; defaultQuotaRetryAfter
	// when zero. Schedulers floor their backoff with it when parking a
	// quota-exhausted job.
	QuotaRetryAfter float64
	// SessionsReclaimed counts abandoned upload sessions garbage-
	// collected by ReclaimQuota.
	SessionsReclaimed int

	// SlowFor is the gray-failure knob: per-source ingestion throttling
	// that NEVER errors. A request from a mapped remote host is served
	// normally — 200s all the way — but its payload is ingested at the
	// mapped bytes/second, the way real providers silently rate-limit
	// one peering point while everyone else stays fast. nil means no
	// slow-path throttling.
	SlowFor map[string]float64
	// SlowedRequests counts requests served through SlowFor windows.
	SlowedRequests int

	// InjectedFaults counts requests failed by the knobs above.
	InjectedFaults int

	windowStart simclock.Time
	windowCount int
}

type uploadSession struct {
	id       string
	name     string
	total    float64 // declared size; 0 when unknown (Dropbox)
	received float64
	done     bool
	lastUsed simclock.Time
}

// NewService builds a provider and mounts its routes. Call Start to bind
// the listener and begin serving.
func NewService(eng *simclock.Engine, tn *transport.Net, name, host string, style Style) *Service {
	s := &Service{
		Name:  name,
		Host:  host,
		Style: style,
		Auth:  oauthsim.NewAuthServer(eng),
		Store: NewObjectStore(eng),
		HTTP:  httpsim.NewServer(tn),

		eng:      eng,
		sessions: make(map[string]*uploadSession),
	}
	s.Auth.Mount(s.HTTP)
	switch style {
	case GoogleDrive:
		s.mountGoogleDrive()
	case Dropbox:
		s.mountDropbox()
	case OneDrive:
		s.mountOneDrive()
	default:
		panic("cloudsim: unknown style")
	}
	s.mountCompose()
	return s
}

// Start binds the API listener on the service host and serves forever.
func (s *Service) Start(tn *transport.Net) *transport.Listener {
	l := tn.MustListen(s.Host, APIPort)
	s.HTTP.Serve(l)
	return l
}

func (s *Service) newSession(name string, total float64) *uploadSession {
	sess := &uploadSession{
		id:       fmt.Sprintf("sess-%d", s.nextSess),
		name:     name,
		total:    total,
		lastUsed: s.eng.Now(),
	}
	s.nextSess++
	s.sessions[sess.id] = sess
	return sess
}

// defaultQuotaRetryAfter is the 507 Retry-After hint when the service
// has no explicit QuotaRetryAfter configured.
const defaultQuotaRetryAfter = 15.0

// pendingSessionBytes sums the bytes received into upload sessions
// that have not committed yet. Live sessions hold real storage — the
// real providers charge in-progress resumable uploads against the
// tenant's quota — so quota admission counts them.
func (s *Service) pendingSessionBytes() float64 {
	var n float64
	for _, sess := range s.sessions {
		if !sess.done {
			n += sess.received
		}
	}
	return n
}

// PendingBytes reports the uncommitted bytes live upload sessions
// hold against the quota — the operator's view of drain pressure.
func (s *Service) PendingBytes() float64 { return s.pendingSessionBytes() }

// admitSessionBytes checks n more session bytes against the quota,
// answering 507 Insufficient Storage when they cannot fit next to the
// committed objects and every other live session's pending bytes.
func (s *Service) admitSessionBytes(n float64) *httpsim.Response {
	q := s.Store.Quota
	if q <= 0 || n <= 0 {
		return nil
	}
	if s.Store.Used()+s.pendingSessionBytes()+n > q {
		return s.insufficientStorage(ErrQuotaExceeded.Error())
	}
	return nil
}

// insufficientStorage builds the 507 response with the Retry-After
// pacing hint quota-parked schedulers honor.
func (s *Service) insufficientStorage(msg string) *httpsim.Response {
	ra := s.QuotaRetryAfter
	if ra <= 0 {
		ra = defaultQuotaRetryAfter
	}
	resp := errResp(httpsim.StatusInsufficientStorage, msg)
	resp.Header["Retry-After"] = fmt.Sprintf("%.3f", ra)
	return resp
}

// putErr maps a store write failure to the provider's wire answer:
// quota exhaustion is 507 Insufficient Storage with a Retry-After
// hint; anything else stays 413 as before.
func (s *Service) putErr(err error) *httpsim.Response {
	if errors.Is(err, ErrQuotaExceeded) {
		return s.insufficientStorage(err.Error())
	}
	return errResp(httpsim.StatusPayloadTooLarge, err.Error())
}

// ReclaimQuota garbage-collects abandoned upload sessions — sessions
// that never committed and have been idle for at least idleSecs — and
// returns the pending bytes freed. This is the provider-side half of
// quota-reclaim: a scheduler that hits 507 asks for a cleanup pass
// before giving up on the provider. Deterministic: sessions are
// visited in sorted id order.
func (s *Service) ReclaimQuota(idleSecs float64) float64 {
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := s.eng.Now()
	var freed float64
	for _, id := range ids {
		sess := s.sessions[id]
		if sess.done || sess.received <= 0 {
			continue
		}
		if float64(now-sess.lastUsed) < idleSecs {
			continue
		}
		freed += sess.received
		delete(s.sessions, id)
		s.SessionsReclaimed++
	}
	return freed
}

// InjectAbandonedSession opens a synthetic upload session already
// holding n pending bytes — the fault injector's quota-drain hook. The
// session is never committed and never touched again, so it charges
// the tenant's quota (pendingSessionBytes) and ages toward
// ReclaimQuota eligibility exactly like a genuinely abandoned
// resumable upload. Returns the session id for a later DropSession.
func (s *Service) InjectAbandonedSession(name string, n float64) string {
	sess := s.newSession(name, n)
	sess.received = n
	return sess.id
}

// DropSession deletes a session by id, reporting whether it still
// existed — the quota-drain window closing (ReclaimQuota may have
// collected the session already, which is fine).
func (s *Service) DropSession(id string) bool {
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// session looks up an upload session, enforcing SessionTTL: an expired
// session is deleted and reported absent, so clients see the same 404
// an unknown session gets.
func (s *Service) session(id string) (*uploadSession, bool) {
	sess, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	if s.SessionTTL > 0 && float64(s.eng.Now()-sess.lastUsed) > s.SessionTTL {
		delete(s.sessions, id)
		return nil, false
	}
	sess.lastUsed = s.eng.Now()
	return sess, true
}

// protect wraps a handler with OAuth, rate limiting, and request
// counting.
func (s *Service) protect(fn httpsim.HandlerFunc) httpsim.HandlerFunc {
	inner := s.Auth.Protect(fn)
	return func(ctx *httpsim.Ctx, req *httpsim.Request) *httpsim.Response {
		if resp := s.injectFault(); resp != nil {
			return resp
		}
		if resp := s.throttle(); resp != nil {
			return resp
		}
		s.Requests++
		if rate, ok := s.SlowFor[ctx.RemoteHost]; ok && rate > 0 && req.ContentLength() > 0 {
			// Slow-but-200: ingest this source's payload at the throttled
			// rate before handling. The client sees nothing but latency.
			s.SlowedRequests++
			ctx.Proc.Sleep(req.ContentLength() / rate)
		}
		return inner(ctx, req)
	}
}

// injectFault applies the fault-injection knobs; nil means the request
// proceeds normally.
func (s *Service) injectFault() *httpsim.Response {
	if s.Down {
		s.InjectedFaults++
		return errResp(httpsim.StatusServiceUnavailable, "service unavailable")
	}
	if s.FailNext > 0 {
		s.FailNext--
		s.InjectedFaults++
		status := s.FailStatus
		if status == 0 {
			status = httpsim.StatusInternalServerError
		}
		return errResp(status, "injected fault")
	}
	if s.FaultRand != nil {
		if s.ThrottleRate > 0 && s.FaultRand.Float64() < s.ThrottleRate {
			s.InjectedFaults++
			return &httpsim.Response{
				Status: httpsim.StatusTooManyRequests,
				Header: map[string]string{"Retry-After": "1.000"},
				Body:   []byte("injected throttle"),
			}
		}
		if s.ErrorRate > 0 && s.FaultRand.Float64() < s.ErrorRate {
			s.InjectedFaults++
			return errResp(httpsim.StatusInternalServerError, "injected error")
		}
	}
	return nil
}

// throttle enforces the request rate limit; nil means admitted.
func (s *Service) throttle() *httpsim.Response {
	if s.RateLimit <= 0 {
		return nil
	}
	window := s.RateWindow
	if window <= 0 {
		window = 1
	}
	now := s.eng.Now()
	if float64(now-s.windowStart) >= window {
		s.windowStart = now
		s.windowCount = 0
	}
	if s.windowCount >= s.RateLimit {
		s.Throttled++
		retry := window - float64(now-s.windowStart)
		return &httpsim.Response{
			Status: httpsim.StatusTooManyRequests,
			Header: map[string]string{"Retry-After": fmt.Sprintf("%.3f", retry)},
			Body:   []byte("rate limit exceeded"),
		}
	}
	s.windowCount++
	return nil
}

func jsonResp(status int, v any) *httpsim.Response {
	body, err := json.Marshal(v)
	if err != nil {
		return &httpsim.Response{Status: httpsim.StatusInternalServerError, Body: []byte(err.Error())}
	}
	return &httpsim.Response{Status: status, Body: body,
		Header: map[string]string{"Content-Type": "application/json"}}
}

func errResp(status int, msg string) *httpsim.Response {
	return jsonResp(status, map[string]any{"error": msg})
}

// fileMeta is the metadata shape shared by the provider responses.
type fileMeta struct {
	ID   string  `json:"id"`
	Name string  `json:"name"`
	Size float64 `json:"size"`
	MD5  string  `json:"md5,omitempty"`
}

func metaOf(o *Object) fileMeta {
	return fileMeta{ID: o.ID, Name: o.Name, Size: o.Size, MD5: o.MD5}
}

// parseContentRange parses "bytes lo-hi/total" (total may be "*").
func parseContentRange(v string) (lo, hi, total float64, err error) {
	var totStr string
	n, err := fmt.Sscanf(v, "bytes %f-%f/%s", &lo, &hi, &totStr)
	if err != nil || n != 3 {
		return 0, 0, 0, fmt.Errorf("cloudsim: bad Content-Range %q", v)
	}
	if totStr == "*" {
		total = -1
	} else if _, err := fmt.Sscanf(totStr, "%f", &total); err != nil {
		return 0, 0, 0, fmt.Errorf("cloudsim: bad Content-Range total %q", totStr)
	}
	if lo < 0 || hi < lo {
		return 0, 0, 0, fmt.Errorf("cloudsim: inverted Content-Range %q", v)
	}
	return lo, hi, total, nil
}
