// Overlay monitoring: the paper's future work — "monitor and bypass
// dynamic bottlenecks on the WAN". An overlay mesh over the research
// sites probes itself periodically; mid-run, a congestion episode is
// injected on the BCNet hand-off into CANARIE, and the mesh reroutes
// UBC→UAlberta traffic through UMich until the episode clears.
package main

import (
	"fmt"
	"strings"

	"detournet/internal/overlay"
	"detournet/internal/scenario"
	"detournet/internal/simproc"
)

func main() {
	w := scenario.Build(7)

	// Every member site runs an overlay daemon.
	members := []string{scenario.UBC, scenario.UAlberta, scenario.UMich}
	for _, m := range members {
		overlay.NewDaemon(w.Net, m).Start()
	}
	mesh := overlay.NewMesh(w.Net, scenario.UBC, members)
	mesh.Alpha = 0.8 // adapt quickly for the demo

	report := func(p *simproc.Proc, label string) {
		path, bw := mesh.BestPath(scenario.UBC, scenario.UAlberta)
		fmt.Printf("t=%6.0fs  %-28s best path: %-40s (bottleneck %.2f MB/s)\n",
			float64(p.Now()), label, strings.Join(path, " -> "), bw/1e6)
	}

	w.RunWorkload("overlay-monitor", func(p *simproc.Proc) {
		stop := mesh.Monitor(10)
		defer stop()

		p.Sleep(30)
		report(p, "steady state")

		// A congestion episode hits the BCNet hand-off into CANARIE (a
		// link with no modelled background process, so the injected load
		// persists until we clear it).
		e, ok := w.Graph.Edge("bcnet", "vncv1")
		if !ok {
			panic("missing bcnet hand-off")
		}
		w.Graph.Fluid().SetLinkLoad(e.Link, 0.97)
		fmt.Println("\n*** congestion episode on bcnet -> vncv1 (97% load) ***")
		p.Sleep(40)
		report(p, "during episode")

		// Transfer rides the detour the monitor found.
		path, sec, err := mesh.Send(p, scenario.UBC, scenario.UAlberta, 50e6)
		if err != nil {
			panic(err)
		}
		fmt.Printf("          50 MB transfer took %.1f s via %s\n", sec, strings.Join(path, " -> "))

		// The episode clears; the mesh converges back to the direct path.
		w.Graph.Fluid().SetLinkLoad(e.Link, 0)
		fmt.Println("\n*** episode cleared ***")
		p.Sleep(40)
		report(p, "after recovery")
	})
}
