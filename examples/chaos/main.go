// Chaos: the fleet example's multi-tenant trace replayed under the
// canned fault schedule — the detour first-hop link flaps, the
// PacificWave hand-off degrades, Google Drive throws error bursts,
// Dropbox has an outage, the UAlberta DTN crashes. The scheduler runs
// with checkpointed resume, failure classification, and per-route
// circuit breakers, and the report shows what resilience cost and
// saved: goodput, retries, bytes resumed vs. rewritten, breaker
// transitions, per-route totals.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"detournet/internal/faults"
	"detournet/internal/scenario"
	"detournet/internal/sched"
	"detournet/internal/workload"
)

func main() {
	const nJobs = 300
	trace, err := workload.GenerateFleet(workload.FleetSpec{
		Jobs:    nJobs,
		Clients: scenario.Clients,
		Providers: []string{
			scenario.GoogleDrive, scenario.Dropbox, scenario.OneDrive,
		},
	}, rand.New(rand.NewSource(2015)))
	if err != nil {
		panic(err)
	}

	w := scenario.Build(2015)
	inj := faults.NewInjector(w, 2015, faults.CannedSchedule()...)
	exec := sched.NewSimExecutor(w)
	defer exec.Close()
	s := sched.New(sched.Config{
		Workers: 8, Executor: exec, Planner: exec,
		ProviderCap: 4, DTNCap: 2,
		MaxAttempts: 5,
		Now:         exec.VirtualNow,
		Sleep:       exec.SleepVirtual,
	})
	s.Start()
	defer s.Close()

	var totalBytes float64
	for _, fj := range trace {
		totalBytes += fj.Size
		err := s.Submit(sched.Job{
			Tenant: fj.Tenant, Client: fj.Client, Provider: fj.Provider,
			Name: fj.Name, Size: fj.Size, Priority: fj.Priority,
		})
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("Chaos: %d jobs (%.0f MB) submitted under %d scripted faults\n",
		len(trace), totalBytes/1e6, len(faults.CannedSchedule()))
	s.Drain()

	st := s.Stats()
	virt := exec.VirtualNow()
	fmt.Printf("drained: %d done, %d failed — %d retries, %d fallbacks, %d failovers, %d breaker diversions\n",
		st.Done, st.Failed, st.Retries, st.Fallbacks, st.Failovers, st.BreakerSkips)
	var goodBytes float64
	for _, rs := range st.PerRoute {
		goodBytes += rs.Bytes
	}
	fmt.Printf("goodput: %.1f MB delivered in %.1f virtual s (%.2f MB/s fleet-wide)\n",
		goodBytes/1e6, virt, goodBytes/1e6/virt)
	fmt.Printf("recovery: %.1f MB resumed from checkpoints, %.1f MB rewritten (%.1f%% of delivered)\n",
		st.BytesResumed/1e6, st.BytesRewritten/1e6, 100*st.BytesRewritten/goodBytes)
	fmt.Printf("faults injected: %d schedule transitions, %d breaker transitions\n",
		inj.Injected, st.BreakerTransitions)

	fmt.Println("breakers at drain:")
	keys := make([]string, 0, len(st.Breakers))
	for k := range st.Breakers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-32s %s\n", k, st.Breakers[k])
	}

	fmt.Println("per-route totals:")
	routes := make([]string, 0, len(st.PerRoute))
	for r := range st.PerRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		rs := st.PerRoute[r]
		fmt.Printf("  %-16s %4d jobs  %8.1f MB  %6.2f MB/s\n",
			r, rs.Jobs, rs.Bytes/1e6, rs.Throughput()/1e6)
	}

	fmt.Println("fault timeline (first 12 transitions):")
	for i, tr := range inj.Transitions() {
		if i == 12 {
			fmt.Printf("  ... %d more\n", len(inj.Transitions())-12)
			break
		}
		fmt.Printf("  %s\n", tr)
	}
}
