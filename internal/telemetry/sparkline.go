package telemetry

import "math"

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline at most width runes wide.
// Longer series are downsampled by bucket means; the vertical scale is
// the series' own min..max (a flat series renders mid-height). Empty
// input yields an empty string.
func Spark(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	cols := values
	if len(values) > width {
		cols = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			cols[i] = sum / float64(hi-lo)
		}
	}
	lo, hi := cols[0], cols[0]
	for _, v := range cols[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]rune, len(cols))
	for i, v := range cols {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
