package sched

import (
	"sync"
	"testing"
	"time"
)

// TestTryAcquireLanesRespectsCaps pins the atomic multi-lane admission:
// it never takes more provider slots than the cap, skips full DTNs
// without giving up on later lanes, and never blocks.
func TestTryAcquireLanesRespectsCaps(t *testing.T) {
	c := newCapTable(2, 1)
	// direct + 3 detours against ProviderCap=2: only 2 lanes fit.
	idx := c.tryAcquireLanes("Drive", []string{"", "ualberta", "uvic", "utoronto"})
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("acquired lanes %v, want [0 1]", idx)
	}
	c.release("Drive", "")
	c.release("Drive", "ualberta")

	// A full DTN is skipped; a later lane with a free DTN still fits.
	if err := c.acquire("Dropbox", "ualberta"); err != nil {
		t.Fatal(err)
	}
	idx = c.tryAcquireLanes("Drive", []string{"", "ualberta", "uvic"})
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("acquired lanes %v, want [0 2] (ualberta full)", idx)
	}
	c.release("Drive", "")
	c.release("Drive", "uvic")
	c.release("Dropbox", "ualberta")

	c.close()
	if idx = c.tryAcquireLanes("Drive", []string{""}); idx != nil {
		t.Fatalf("acquired %v from a closed table", idx)
	}
}

// TestTryAcquireLanesNoDeadlock is the regression for the multipath
// hold-and-wait deadlock: two striped jobs racing for the same
// provider's slots (cap 4, 3 lanes each) must both finish — each takes
// whatever is free atomically instead of holding partial slots while
// blocking on the rest.
func TestTryAcquireLanesNoDeadlock(t *testing.T) {
	c := newCapTable(4, 2)
	vias := []string{"", "ualberta", "uvic"}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := c.tryAcquireLanes("Drive", vias)
				for _, k := range idx {
					c.release("Drive", vias[k])
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("striped admission deadlocked")
	}
	prov, _, dtn, _ := c.snapshot()
	if prov["Drive"] != 0 || dtn["ualberta"] != 0 || dtn["uvic"] != 0 {
		t.Fatalf("slots leaked: prov=%v dtn=%v", prov, dtn)
	}
}
