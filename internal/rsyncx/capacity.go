package rsyncx

import (
	"errors"
	"math"
	"sort"
)

// Finite staging disk. A DTN's staging area used to be a bottomless
// map: every pushed partial and every staged file stayed forever, and
// no admission decision ever considered how full the disk was. This
// file models the disk as a bounded resource the way a production
// transfer node must: writes are admitted against headroom, a push
// that cannot fit is refused with a typed ErrNoSpace before any bytes
// cross the wire, and stale state is evicted LRU — with hard safety
// rules so a live transfer never loses bytes it still needs.
//
// Accounting invariant: used = staged + partials + orphaned temp
// files. A reservation covers the *future* bytes of an admitted push
// (size minus confirmed offset) and shrinks chunk by chunk as those
// bytes land in the partial, so used + reserved never exceeds
// Capacity and two concurrent pushes cannot both be admitted into the
// same headroom.
//
// Eviction safety rules, in order of authority:
//   - a pinned name is never evicted (pins mark live relay reads and
//     active push handlers — the "live session token" of the issue);
//   - a name with a standing reservation is never evicted (a client
//     holds an accepted go-ahead for it);
//   - everything else is fair game, stalest first (lowest touch
//     sequence — the daemon has no wall clock, so a monotonic
//     sequence stands in for last-watermark age).
//
// Evicting an unpinned partial is safe by construction: the client's
// resume handshake treats the daemon's disk as ground truth, so a
// later Stat simply reports a lower (or zero) offset and the sender
// re-sends at most the evicted bytes.

// ErrNoSpace reports a staged write refused because the DTN's staging
// disk has no headroom left even after safe eviction. The message is
// chosen so it survives the wire (acks flatten errors to strings):
// "no space" is the substring remote classifiers key on.
var ErrNoSpace = errors.New("rsyncx: no space left on staging disk")

// CapacityStats is the operator's view of one DTN staging disk.
type CapacityStats struct {
	Capacity     float64 // configured bytes; 0 = unbounded
	Used         float64 // staged + partial + orphan bytes
	Reserved     float64 // admitted-but-unwritten push bytes
	Headroom     float64 // capacity - used - reserved (+Inf when unbounded)
	Staged       int     // fully staged files
	StagedBytes  float64
	Partials     int // in-progress chunked pushes
	PartialBytes float64
	Orphans      int // leaked *.tmp files awaiting the restart sweep
	OrphanBytes  float64
	Evictions    int     // names evicted to make room
	EvictedBytes float64 // bytes those evictions reclaimed
	OrphansSwept int     // *.tmp files reclaimed by restart sweeps
}

// Used returns the bytes the staging disk currently holds: staged
// files, confirmed partial bytes, and any orphaned temp files a dead
// process left behind.
func (d *Daemon) Used() float64 {
	var n float64
	for _, st := range d.staging {
		n += st.Size
	}
	for _, pt := range d.partials {
		n += pt.received
	}
	for _, sz := range d.orphans {
		n += sz
	}
	return n
}

func (d *Daemon) reservedTotal() float64 {
	var n float64
	for _, r := range d.reserved {
		n += r
	}
	return n
}

// Headroom returns the admittable bytes left on the staging disk —
// capacity minus used minus standing reservations. Unbounded disks
// report +Inf.
func (d *Daemon) Headroom() float64 {
	if d.Capacity <= 0 {
		return math.Inf(1)
	}
	h := d.Capacity - d.Used() - d.reservedTotal()
	if h < 0 {
		return 0
	}
	return h
}

// Stats snapshots the staging disk for operators and schedulers.
func (d *Daemon) Stats() CapacityStats {
	cs := CapacityStats{
		Capacity:     d.Capacity,
		Reserved:     d.reservedTotal(),
		Evictions:    d.Evictions,
		EvictedBytes: d.EvictedBytes,
		OrphansSwept: d.OrphansSwept,
	}
	for _, st := range d.staging {
		cs.Staged++
		cs.StagedBytes += st.Size
	}
	for _, pt := range d.partials {
		cs.Partials++
		cs.PartialBytes += pt.received
	}
	for _, sz := range d.orphans {
		cs.Orphans++
		cs.OrphanBytes += sz
	}
	cs.Used = cs.StagedBytes + cs.PartialBytes + cs.OrphanBytes
	cs.Headroom = math.Inf(1)
	if d.Capacity > 0 {
		cs.Headroom = d.Capacity - cs.Used - cs.Reserved
		if cs.Headroom < 0 {
			cs.Headroom = 0
		}
	}
	return cs
}

// Pin marks name as in live use (an active push handler, an in-flight
// relay read): a pinned name is never evicted. Pins nest.
func (d *Daemon) Pin(name string) {
	if d.pins == nil {
		d.pins = make(map[string]int)
	}
	d.pins[name]++
}

// Unpin releases one pin on name. Unpinning below zero is tolerated
// (a holder's deferred release may race a daemon crash that already
// dropped the pin table).
func (d *Daemon) Unpin(name string) {
	if d.pins[name] > 1 {
		d.pins[name]--
		return
	}
	delete(d.pins, name)
}

// touch bumps name's LRU sequence — called whenever its on-disk
// watermark advances, so eviction age mirrors last write activity.
func (d *Daemon) touch(name string) {
	d.seq++
	if d.touched == nil {
		d.touched = make(map[string]int)
	}
	d.touched[name] = d.seq
}

// admit reserves need bytes of headroom for name, evicting stale
// state if the disk allows it, and returns ErrNoSpace when the bytes
// cannot fit. A zero-capacity disk admits everything. The reservation
// must be walked down with consumeReservation as bytes land and any
// remainder dropped with unreserve when the push ends.
func (d *Daemon) admit(name string, need float64) error {
	if d.Capacity <= 0 || need <= 0 {
		return nil
	}
	if err := d.ensureRoom(need, name); err != nil {
		return err
	}
	if d.reserved == nil {
		d.reserved = make(map[string]float64)
	}
	d.reserved[name] += need
	return nil
}

// consumeReservation converts n reserved bytes of name into written
// bytes (the caller has just advanced the partial by n): the
// reservation shrinks so used + reserved stays constant.
func (d *Daemon) consumeReservation(name string, n float64) {
	d.unreserve(name, n)
}

// unreserve drops up to n reserved bytes of name, clamping at zero.
func (d *Daemon) unreserve(name string, n float64) {
	r, ok := d.reserved[name]
	if !ok {
		return
	}
	r -= n
	if r <= 1e-9 {
		delete(d.reserved, name)
		return
	}
	d.reserved[name] = r
}

// ensureRoom makes need bytes of headroom available for name,
// evicting stale unpinned state LRU if necessary. It never evicts
// name itself, a pinned name, or a name with a standing reservation.
func (d *Daemon) ensureRoom(need float64, name string) error {
	if d.Capacity <= 0 {
		return nil
	}
	free := d.Capacity - d.Used() - d.reservedTotal()
	if need <= free+1e-9 {
		return nil
	}
	if !d.EvictStale {
		return ErrNoSpace
	}
	for _, victim := range d.evictionOrder(name) {
		if need <= free+1e-9 {
			break
		}
		free += d.evict(victim)
	}
	if need <= free+1e-9 {
		return nil
	}
	return ErrNoSpace
}

// evictionOrder lists the evictable names, stalest first. Orphaned
// temp files sort ahead of everything (they are garbage by
// definition); live-pinned and reserved names are excluded entirely.
func (d *Daemon) evictionOrder(protect string) []string {
	type cand struct {
		name string
		seq  int
	}
	var cands []cand
	for name := range d.orphans {
		cands = append(cands, cand{name, -1}) // garbage: always stalest
	}
	consider := func(name string) {
		if name == protect || d.pins[name] > 0 {
			return
		}
		if _, held := d.reserved[name]; held {
			return
		}
		cands = append(cands, cand{name, d.touched[name]})
	}
	for name := range d.partials {
		consider(name)
	}
	for name := range d.staging {
		consider(name)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return cands[i].name < cands[j].name
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// evict removes one name from the disk and returns the bytes freed.
func (d *Daemon) evict(name string) float64 {
	var freed float64
	if sz, ok := d.orphans[name]; ok {
		freed += sz
		delete(d.orphans, name)
	}
	if pt, ok := d.partials[name]; ok {
		freed += pt.received
		delete(d.partials, name)
	}
	if st, ok := d.staging[name]; ok {
		freed += st.Size
		delete(d.staging, name)
	}
	delete(d.rot, name)
	delete(d.touched, name)
	if freed > 0 {
		d.Evictions++
		d.EvictedBytes += freed
	}
	return freed
}

// noteOrphan records a leaked temp file (a process death between a
// chunk's temp write and its atomic promote). Orphans occupy disk
// until the restart sweep or an eviction pass reclaims them.
func (d *Daemon) noteOrphan(name string, size float64) {
	if size <= 0 {
		return
	}
	if d.orphans == nil {
		d.orphans = make(map[string]float64)
	}
	d.orphans[name+".tmp"] += size
}

// sweepOrphans reclaims every leaked *.tmp file — the restarted
// daemon's fsck pass over its staging directory.
func (d *Daemon) sweepOrphans() {
	if len(d.orphans) == 0 {
		return
	}
	d.OrphansSwept += len(d.orphans)
	d.orphans = make(map[string]float64)
}
