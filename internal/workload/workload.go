// Package workload generates synthetic personal-cloud-storage workloads:
// file-size distributions and arrival processes. The paper argues that
// routing inefficiencies "have a real impact on many users" because
// cloud-storage traffic is a growing class; this package makes that
// claim testable by replaying realistic job mixes through the detour
// system (see the workload study in package experiments).
//
// The size distribution shapes follow the measurement literature the
// paper builds on (Drago et al., IMC'12/13): personal cloud files are
// dominated by small objects with a heavy multi-megabyte tail from
// photos, archives, and videos.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SizeDist samples file sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) float64
}

// Fixed always returns the same size.
type Fixed struct {
	Bytes float64
}

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) float64 { return f.Bytes }

// Lognormal is the classic heavy-tailed file-size model.
type Lognormal struct {
	// MedianBytes is exp(mu).
	MedianBytes float64
	// Sigma is the log-space standard deviation; 1.5–2.5 gives the
	// heavy tails seen in storage traces.
	Sigma float64
	// MaxBytes truncates the tail (0 = untruncated).
	MaxBytes float64
}

// Sample implements SizeDist.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	x := l.MedianBytes * math.Exp(l.Sigma*rng.NormFloat64())
	if x < 1 {
		x = 1
	}
	if l.MaxBytes > 0 && x > l.MaxBytes {
		x = l.MaxBytes
	}
	return x
}

// Empirical samples from weighted buckets.
type Empirical struct {
	Sizes   []float64
	Weights []float64

	cum []float64
}

// NewEmpirical builds a weighted discrete distribution.
func NewEmpirical(sizes, weights []float64) (*Empirical, error) {
	if len(sizes) == 0 || len(sizes) != len(weights) {
		return nil, fmt.Errorf("workload: sizes/weights mismatch")
	}
	e := &Empirical{Sizes: sizes, Weights: weights}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: zero total weight")
	}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		e.cum = append(e.cum, acc)
	}
	return e, nil
}

// Sample implements SizeDist.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.Sizes) {
		i = len(e.Sizes) - 1
	}
	return e.Sizes[i]
}

// PersonalCloud returns a size mix calibrated to personal cloud-storage
// sync traffic: documents and thumbnails dominate counts, photos and
// media dominate bytes.
func PersonalCloud() SizeDist {
	e, err := NewEmpirical(
		[]float64{50e3, 300e3, 2e6, 8e6, 30e6, 100e6},
		[]float64{40, 25, 15, 10, 7, 3},
	)
	if err != nil {
		panic(err)
	}
	return e
}

// Arrival samples inter-arrival gaps in seconds.
type Arrival interface {
	NextGap(rng *rand.Rand) float64
}

// Poisson arrivals with the given mean rate.
type Poisson struct {
	RatePerSec float64
}

// NextGap implements Arrival.
func (p Poisson) NextGap(rng *rand.Rand) float64 {
	if p.RatePerSec <= 0 {
		panic("workload: non-positive rate")
	}
	return rng.ExpFloat64() / p.RatePerSec
}

// Periodic arrivals with a fixed gap.
type Periodic struct {
	GapSec float64
}

// NextGap implements Arrival.
func (p Periodic) NextGap(*rand.Rand) float64 { return p.GapSec }

// Job is one upload task.
type Job struct {
	Name string
	// At is the arrival offset in seconds from the workload start.
	At float64
	// Size is the file size in bytes.
	Size float64
}

// Generate produces n jobs with the given size and arrival models,
// deterministically from the rng.
func Generate(n int, sizes SizeDist, arrivals Arrival, rng *rand.Rand) []Job {
	if n <= 0 {
		panic("workload: non-positive job count")
	}
	if sizes == nil || arrivals == nil || rng == nil {
		panic("workload: nil argument")
	}
	jobs := make([]Job, n)
	t := 0.0
	for i := range jobs {
		t += arrivals.NextGap(rng)
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%04d.bin", i),
			At:   t,
			Size: sizes.Sample(rng),
		}
	}
	return jobs
}

// TotalBytes sums the jobs' sizes.
func TotalBytes(jobs []Job) float64 {
	var s float64
	for _, j := range jobs {
		s += j.Size
	}
	return s
}

// FleetJob is one job of a multi-tenant, multi-site trace: a Job plus
// who submits it, from where, and to which provider — the input shape
// of the transfer-scheduler control plane (package sched).
type FleetJob struct {
	Job
	Tenant   string
	Client   string
	Provider string
	// Priority is a small non-negative queueing priority; higher drains
	// sooner.
	Priority int
}

// FleetSpec describes a fleet trace.
type FleetSpec struct {
	// Jobs is the trace length.
	Jobs int
	// Clients and Providers are sampled uniformly per job.
	Clients   []string
	Providers []string
	// Tenants defaults to Clients (per-site tenancy) when nil.
	Tenants []string
	// Sizes and Arrivals are the per-job models (defaults:
	// PersonalCloud sizes, Poisson 1 job/sec).
	Sizes    SizeDist
	Arrivals Arrival
	// PriorityLevels spreads jobs over priorities 0..n-1 (default 3).
	PriorityLevels int
}

// GenerateFleet produces a fleet trace deterministically from the rng:
// every job gets a client, provider, tenant, priority, size, and
// arrival offset.
func GenerateFleet(spec FleetSpec, rng *rand.Rand) ([]FleetJob, error) {
	if spec.Jobs <= 0 {
		return nil, fmt.Errorf("workload: non-positive fleet size")
	}
	if len(spec.Clients) == 0 || len(spec.Providers) == 0 {
		return nil, fmt.Errorf("workload: fleet needs clients and providers")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: fleet needs an rng")
	}
	tenants := spec.Tenants
	if len(tenants) == 0 {
		tenants = spec.Clients
	}
	sizes := spec.Sizes
	if sizes == nil {
		sizes = PersonalCloud()
	}
	arrivals := spec.Arrivals
	if arrivals == nil {
		arrivals = Poisson{RatePerSec: 1}
	}
	levels := spec.PriorityLevels
	if levels <= 0 {
		levels = 3
	}
	jobs := make([]FleetJob, spec.Jobs)
	t := 0.0
	for i := range jobs {
		t += arrivals.NextGap(rng)
		ci := rng.Intn(len(spec.Clients))
		tenant := spec.Clients[ci]
		if len(spec.Tenants) > 0 {
			tenant = tenants[rng.Intn(len(tenants))]
		}
		jobs[i] = FleetJob{
			Job: Job{
				Name: fmt.Sprintf("fleet-%05d.bin", i),
				At:   t,
				Size: sizes.Sample(rng),
			},
			Tenant:   tenant,
			Client:   spec.Clients[ci],
			Provider: spec.Providers[rng.Intn(len(spec.Providers))],
			Priority: rng.Intn(levels),
		}
	}
	return jobs, nil
}
