package sched

import (
	"testing"

	"detournet/internal/journal"
)

// TestJournalCompactionAbsorbsENOSPC: on a bounded device, a churning
// journal (submit+finish pairs fold to almost nothing) rides out
// ENOSPC via emergency compaction — saves count up, degraded mode
// never engages, and no append is lost.
func TestJournalCompactionAbsorbsENOSPC(t *testing.T) {
	dev := journal.NewMemDevice()
	dev.Capacity = 4 << 10
	cj, rec, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 {
		t.Fatalf("fresh journal recovered %d pending jobs", len(rec.Pending))
	}
	cj.SetCompactEvery(1 << 30) // only pressure triggers compaction
	for i := 0; i < 200; i++ {
		j := Job{Tenant: "t", Client: "c", Provider: "p", Name: "churn.bin", Size: 1e6}
		cj.NoteSubmit(j)
		cj.NoteFinish(&Result{Job: j})
	}
	if cj.Degraded() {
		t.Fatal("journal degraded despite compactable churn")
	}
	if cj.ENOSPCSaves() == 0 {
		t.Fatal("no ENOSPC saves recorded: the device bound never bit")
	}
	if cj.DroppedAppends() != 0 {
		t.Fatalf("dropped %d appends while compaction could absorb the pressure", cj.DroppedAppends())
	}
	if dev.Size() > dev.Capacity {
		t.Fatalf("log %d bytes exceeds device capacity %d", dev.Size(), dev.Capacity)
	}
}

// TestJournalDegradedMode: when even the compacted state no longer
// fits (device clamped at near-zero), the journal degrades to
// in-memory folding instead of crashing the control plane: the
// OnDegraded warning fires exactly once, dropped appends are counted,
// and scheduling state stays queryable.
func TestJournalDegradedMode(t *testing.T) {
	dev := journal.NewMemDevice()
	cj, _, err := NewControlJournal(dev)
	if err != nil {
		t.Fatal(err)
	}
	warnings := 0
	cj.OnDegraded(func() { warnings++ })
	cj.JournalENOSPC(true) // clamp: nothing fits, not even a snapshot

	j := Job{Tenant: "t", Client: "c", Provider: "p", Name: "doomed.bin", Size: 1e6}
	cj.NoteSubmit(j)
	if !cj.Degraded() {
		t.Fatal("journal not degraded after un-compactable ENOSPC")
	}
	if warnings != 1 {
		t.Fatalf("OnDegraded fired %d times, want once", warnings)
	}
	first := cj.DroppedAppends()
	if first == 0 {
		t.Fatal("degraded journal counted no dropped appends")
	}
	cj.NoteSubmit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "more.bin", Size: 1e6})
	if cj.DroppedAppends() <= first {
		t.Fatal("later appends not counted as dropped")
	}
	if warnings != 1 {
		t.Fatalf("OnDegraded re-fired (%d times): must warn once", warnings)
	}
	// In-memory folding still serves the scheduler.
	if cj.SeqFor("doomed.bin") < 0 || cj.SeqFor("more.bin") < 0 {
		t.Fatal("degraded journal lost in-memory scheduling state")
	}
	// Degraded mode is sticky: space coming back does not silently
	// rejoin a log that now has a hole in it.
	cj.JournalENOSPC(false)
	cj.NoteSubmit(Job{Tenant: "t", Client: "c", Provider: "p", Name: "late.bin", Size: 1e6})
	if !cj.Degraded() {
		t.Fatal("degraded mode cleared itself after unclamp")
	}
}
