package sched

import (
	"testing"

	"detournet/internal/core"
	"detournet/internal/faults"
	"detournet/internal/scenario"
)

// pinDetour is a planner that always picks the UAlberta detour, with
// the full candidate set available for failover.
func pinDetour() Planner {
	return PlannerFunc(func(c, p string, s float64) (core.Route, []core.Route, error) {
		return core.ViaRoute(scenario.UAlberta), scenario.Routes(), nil
	})
}

// chaosRun executes one UBC → Google Drive job through the scheduler
// while the given fault schedule plays, and returns its result and the
// scheduler stats.
func chaosRun(t *testing.T, disableRecovery bool, specs ...faults.Spec) (Result, Stats) {
	t.Helper()
	w := scenario.Build(3)
	exec := NewSimExecutor(w)
	faults.NewInjector(w, 3, specs...)
	var res Result
	s := New(Config{
		Workers: 1, Executor: exec, Planner: pinDetour(),
		MaxAttempts:     4,
		Now:             exec.VirtualNow,
		Sleep:           exec.SleepVirtual,
		DisableRecovery: disableRecovery,
		OnResult:        func(r Result) { res = r },
	})
	s.Start()
	if err := s.Submit(Job{
		Tenant: "chaos", Client: scenario.UBC, Provider: scenario.GoogleDrive,
		Name: "chaos.bin", Size: 100e6,
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	s.Drain()
	st := s.Stats()
	s.Close()
	return res, st
}

// TestChaosResumeAcrossLinkFlap is the PR's acceptance scenario: the
// detour's first-hop link (CANARIE Vancouver–Edmonton) goes down in
// the middle of hop 1. The transfer must complete by resuming from the
// DTN's partial offset, rewriting less than 20% of the file.
func TestChaosResumeAcrossLinkFlap(t *testing.T) {
	flap := faults.Spec{
		Kind: faults.LinkDown, From: "vncv1", To: "edmn1",
		Start: 5, Duration: 8,
	}

	res, st := chaosRun(t, false, flap)
	if res.Err != nil {
		t.Fatalf("job did not survive the flap: %v", res.Err)
	}
	if res.Attempts < 2 {
		t.Fatalf("flap should have forced a retry, attempts = %d", res.Attempts)
	}
	if res.Resumed == 0 {
		t.Fatal("checkpointed resume never engaged")
	}
	if limit := 0.2 * res.Job.Size; res.Rewritten >= limit {
		t.Fatalf("rewrote %.0f bytes, want < %.0f (20%% of file)", res.Rewritten, limit)
	}
	if st.BytesResumed == 0 {
		t.Fatal("scheduler stats recorded no resumed bytes")
	}

	// Negative control: same schedule with recovery disabled. The job
	// must show no checkpoint accounting (it restarted from byte zero on
	// every attempt) — and redoing the work costs it real transfer time.
	nres, nst := chaosRun(t, true, flap)
	if nres.Resumed != 0 || nres.Rewritten != 0 {
		t.Fatalf("recovery disabled but checkpoint accounting ran: resumed=%.0f rewritten=%.0f",
			nres.Resumed, nres.Rewritten)
	}
	if nst.BytesResumed != 0 {
		t.Fatalf("recovery disabled but stats counted %.0f resumed bytes", nst.BytesResumed)
	}
	if nres.Err == nil && nres.Seconds <= res.Seconds {
		t.Fatalf("restart-from-zero attempt (%.1fs) should be slower than the resumed one (%.1fs)",
			nres.Seconds, res.Seconds)
	}
}

// TestChaosFailoverToDirect crashes the detour's DTN for good: the
// scheduler must classify the dead route, quarantine it, and finish
// the job over the direct route.
func TestChaosFailoverToDirect(t *testing.T) {
	res, st := chaosRun(t, false, faults.Spec{
		Kind: faults.DTNCrash, DTN: scenario.UAlberta,
		Start: 5, Duration: 1e9,
	})
	if res.Err != nil {
		t.Fatalf("job did not survive the DTN crash: %v", res.Err)
	}
	if res.Route != core.DirectRoute {
		t.Fatalf("job finished on %s, want Direct after failover", res.Route)
	}
	if st.Failovers == 0 {
		t.Fatal("stats recorded no failovers")
	}
	if inv := st.CacheInvalidations; inv == 0 {
		t.Fatal("dead detour was never quarantined")
	}
}
